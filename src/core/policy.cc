#include "core/policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::core {

const char *
policyKindName(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Single:
        return "single";
      case PolicyKind::Sequential:
        return "seq";
      case PolicyKind::ConcurrentEt:
        return "conc-et";
      case PolicyKind::ConcurrentFo:
        return "conc-fo";
    }
    return "unknown";
}

std::string
EnsembleConfig::describe(const MeasurementSet &ms) const
{
    if (kind == PolicyKind::Single)
        return common::strprintf("single(%s)",
                                 ms.versionName(primary).c_str());
    return common::strprintf("%s(%s->%s,th=%.2f)",
                             policyKindName(kind),
                             ms.versionName(primary).c_str(),
                             ms.versionName(secondary).c_str(),
                             confidenceThreshold);
}

PolicyOutcome
evaluateRequest(const MeasurementSet &ms, const EnsembleConfig &cfg,
                std::size_t request)
{
    const Measurement &p = ms.at(cfg.primary, request);
    PolicyOutcome out;

    switch (cfg.kind) {
      case PolicyKind::Single: {
        out.error = p.error;
        out.latency = p.latency;
        out.cost = p.cost;
        return out;
      }
      case PolicyKind::Sequential: {
        if (p.confidence >= cfg.confidenceThreshold) {
            out.error = p.error;
            out.latency = p.latency;
            out.cost = p.cost;
            return out;
        }
        const Measurement &s = ms.at(cfg.secondary, request);
        out.error = s.error;
        out.latency = p.latency + s.latency;
        out.cost = p.cost + s.cost;
        out.escalated = true;
        return out;
      }
      case PolicyKind::ConcurrentEt: {
        const Measurement &s = ms.at(cfg.secondary, request);
        if (p.confidence >= cfg.confidenceThreshold) {
            // The primary's result is accepted the moment it is
            // available; the secondary is killed then and billed for
            // its partial execution.
            out.error = p.error;
            out.latency = p.latency;
            double killed = std::min(p.latency, s.latency);
            out.cost =
                p.cost +
                (s.latency > 0.0 ? s.cost * killed / s.latency : 0.0);
            return out;
        }
        // Not confident: wait for the secondary. The primary already
        // completed (it is the faster version); both bills are paid.
        out.error = s.error;
        out.latency = std::max(p.latency, s.latency);
        out.cost = p.cost + s.cost;
        out.escalated = true;
        return out;
      }
      case PolicyKind::ConcurrentFo: {
        const Measurement &s = ms.at(cfg.secondary, request);
        // Both always run to completion; only the response time
        // depends on the confidence check.
        out.cost = p.cost + s.cost;
        if (p.confidence >= cfg.confidenceThreshold) {
            out.error = p.error;
            out.latency = p.latency;
        } else {
            out.error = s.error;
            out.latency = std::max(p.latency, s.latency);
            out.escalated = true;
        }
        return out;
      }
    }
    common::panic("unhandled policy kind");
}

PolicyAggregate
evaluateSample(const MeasurementSet &ms, const EnsembleConfig &cfg,
               const std::vector<std::size_t> &sample)
{
    PolicyAggregate agg;
    if (sample.empty())
        return agg;
    std::size_t escalations = 0;
    for (std::size_t r : sample) {
        PolicyOutcome o = evaluateRequest(ms, cfg, r);
        agg.meanError += o.error;
        agg.meanLatency += o.latency;
        agg.meanCost += o.cost;
        if (o.escalated)
            ++escalations;
    }
    auto n = static_cast<double>(sample.size());
    agg.meanError /= n;
    agg.meanLatency /= n;
    agg.meanCost /= n;
    agg.escalationRate = static_cast<double>(escalations) / n;
    return agg;
}

PolicyAggregate
evaluateAll(const MeasurementSet &ms, const EnsembleConfig &cfg)
{
    std::vector<std::size_t> all(ms.requestCount());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return evaluateSample(ms, cfg, all);
}

std::vector<EnsembleConfig>
enumerateCandidates(std::size_t version_count,
                    const std::vector<double> &thresholds)
{
    TT_ASSERT(version_count > 0, "need at least one version");
    std::vector<EnsembleConfig> out;
    for (std::size_t v = 0; v < version_count; ++v) {
        EnsembleConfig c;
        c.kind = PolicyKind::Single;
        c.primary = v;
        c.secondary = v;
        out.push_back(c);
    }
    const PolicyKind kinds[] = {PolicyKind::Sequential,
                                PolicyKind::ConcurrentEt,
                                PolicyKind::ConcurrentFo};
    for (PolicyKind kind : kinds) {
        for (std::size_t p = 0; p < version_count; ++p) {
            for (std::size_t s = p + 1; s < version_count; ++s) {
                for (double th : thresholds) {
                    EnsembleConfig c;
                    c.kind = kind;
                    c.primary = p;
                    c.secondary = s;
                    c.confidenceThreshold = th;
                    out.push_back(c);
                }
            }
        }
    }
    return out;
}

} // namespace toltiers::core
