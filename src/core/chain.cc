#include "core/chain.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::core {

std::string
ChainConfig::describe(const MeasurementSet &ms) const
{
    std::string out = "chain(";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        if (i > 0)
            out += "->";
        out += ms.versionName(stages[i].version);
        if (i + 1 < stages.size()) {
            out += common::strprintf("@%.2f",
                                     stages[i].confidenceThreshold);
        }
    }
    out += ")";
    return out;
}

PolicyOutcome
evaluateChainRequest(const MeasurementSet &ms, const ChainConfig &cfg,
                     std::size_t request)
{
    TT_ASSERT(!cfg.stages.empty(), "chain without stages");
    PolicyOutcome out;
    for (std::size_t i = 0; i < cfg.stages.size(); ++i) {
        const ChainStage &stage = cfg.stages[i];
        const Measurement &m = ms.at(stage.version, request);
        out.latency += m.latency;
        out.cost += m.cost;
        out.error = m.error;
        bool last = i + 1 == cfg.stages.size();
        if (last || m.confidence >= stage.confidenceThreshold) {
            out.escalated = i > 0;
            return out;
        }
    }
    return out; // Unreachable; the last stage always returns.
}

PolicyAggregate
evaluateChainSample(const MeasurementSet &ms, const ChainConfig &cfg,
                    const std::vector<std::size_t> &sample)
{
    PolicyAggregate agg;
    if (sample.empty())
        return agg;
    std::size_t escalations = 0;
    for (std::size_t r : sample) {
        PolicyOutcome o = evaluateChainRequest(ms, cfg, r);
        agg.meanError += o.error;
        agg.meanLatency += o.latency;
        agg.meanCost += o.cost;
        if (o.escalated)
            ++escalations;
    }
    auto n = static_cast<double>(sample.size());
    agg.meanError /= n;
    agg.meanLatency /= n;
    agg.meanCost /= n;
    agg.escalationRate = static_cast<double>(escalations) / n;
    return agg;
}

std::vector<ChainConfig>
enumerateChains(std::size_t version_count,
                const std::vector<double> &thresholds)
{
    std::vector<ChainConfig> out;
    for (std::size_t a = 0; a < version_count; ++a) {
        for (std::size_t b = a + 1; b < version_count; ++b) {
            for (std::size_t c = b + 1; c < version_count; ++c) {
                for (double th : thresholds) {
                    ChainConfig cfg;
                    cfg.stages = {{a, th}, {b, th}, {c, 0.0}};
                    out.push_back(std::move(cfg));
                }
            }
        }
    }
    return out;
}

} // namespace toltiers::core
