/**
 * @file
 * Service-version ensemble policies (paper §IV).
 *
 * A Tolerance Tier is served by an ensemble of service versions under
 * a routing policy. We implement the policies the paper evaluates —
 * simple two-version schemes that outperformed more complex ones:
 *
 *  - Single:      every request goes to one version (the OSFA shape);
 *  - Sequential:  run the fast primary; if its confidence is below a
 *                 threshold, escalate to the accurate secondary
 *                 (latency and cost add up on escalation);
 *  - ConcurrentEt: race primary and secondary; if the primary is
 *                 confident its result is returned at the primary's
 *                 latency and the secondary is killed — paying for
 *                 the secondary's partial execution;
 *  - ConcurrentFo: race both to completion (fail-over): the response
 *                 is the primary's when confident, the secondary's
 *                 otherwise, but both bills are always paid.
 *
 * Policies are evaluated analytically over measurement traces — the
 * same simulate() the paper's rule generator calls — and executed
 * live by the TierService.
 */

#ifndef TOLTIERS_CORE_POLICY_HH
#define TOLTIERS_CORE_POLICY_HH

#include <string>
#include <vector>

#include "core/measurement.hh"

namespace toltiers::core {

/** Ensemble policy shape. */
enum class PolicyKind { Single, Sequential, ConcurrentEt,
                        ConcurrentFo };

/** Printable policy-kind name. */
const char *policyKindName(PolicyKind k);

/** One candidate ensemble configuration. */
struct EnsembleConfig
{
    PolicyKind kind = PolicyKind::Single;
    std::size_t primary = 0;         //!< Fast version index.
    std::size_t secondary = 0;       //!< Accurate version index.
    double confidenceThreshold = 0.0;

    /** Human-readable description, e.g. "seq(v1->v7,th=0.8)". */
    std::string describe(const MeasurementSet &ms) const;
};

/** Outcome of one request under a policy. */
struct PolicyOutcome
{
    double error = 0.0;
    double latency = 0.0;
    double cost = 0.0;
    bool escalated = false; //!< Secondary result was used.
};

/**
 * Evaluate one request under a configuration using the measurement
 * trace (closed-form, no queueing).
 */
PolicyOutcome evaluateRequest(const MeasurementSet &ms,
                              const EnsembleConfig &cfg,
                              std::size_t request);

/** Aggregate of a policy over a request sample. */
struct PolicyAggregate
{
    double meanError = 0.0;
    double meanLatency = 0.0;
    double meanCost = 0.0;
    double escalationRate = 0.0;
};

/** Evaluate a configuration over a request subset. */
PolicyAggregate evaluateSample(const MeasurementSet &ms,
                               const EnsembleConfig &cfg,
                               const std::vector<std::size_t> &sample);

/** Evaluate a configuration over every request. */
PolicyAggregate evaluateAll(const MeasurementSet &ms,
                            const EnsembleConfig &cfg);

/**
 * Enumerate the candidate configuration space the rule generator
 * searches: every Single(v), plus every two-version (primary <
 * secondary) Sequential / ConcurrentEt / ConcurrentFo ensemble at
 * each confidence threshold.
 */
std::vector<EnsembleConfig>
enumerateCandidates(std::size_t version_count,
                    const std::vector<double> &thresholds = {
                        0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99,
                        0.995, 0.999});

} // namespace toltiers::core

#endif // TOLTIERS_CORE_POLICY_HH
