/**
 * @file
 * Descriptive statistics over samples of doubles.
 */

#ifndef TOLTIERS_STATS_DESCRIPTIVE_HH
#define TOLTIERS_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace toltiers::stats {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Unbiased sample variance (n-1 denominator); 0 if n < 2. */
double variance(const std::vector<double> &xs);

/** Unbiased sample standard deviation. */
double stdev(const std::vector<double> &xs);

/** Population standard deviation (n denominator); 0 if empty. */
double stdevPopulation(const std::vector<double> &xs);

/** Smallest element; panics on an empty sample. */
double min(const std::vector<double> &xs);

/** Largest element; panics on an empty sample. */
double max(const std::vector<double> &xs);

/** Sum of elements. */
double sum(const std::vector<double> &xs);

/** Geometric mean; panics if any element is non-positive. */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, q in [0, 100].
 * Panics on an empty sample.
 */
double percentile(std::vector<double> xs, double q);

/** Median (50th percentile). */
double median(std::vector<double> xs);

/**
 * Compact five-number-plus summary of a sample.
 */
struct Summary
{
    std::size_t n = 0;
    double mean = 0.0;
    double stdev = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Compute a Summary; all fields zero for an empty sample. */
Summary summarize(const std::vector<double> &xs);

/**
 * Standard scores of a sample relative to its own mean/stdev
 * (population stdev, matching scipy.stats.zscore). All-equal samples
 * yield all-zero scores.
 */
std::vector<double> zscores(const std::vector<double> &xs);

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_DESCRIPTIVE_HH
