#include "stats/levenshtein.hh"

#include <algorithm>

#include "common/strings.hh"

namespace toltiers::stats {

EditOps
editOps(const std::vector<std::string> &hyp,
        const std::vector<std::string> &ref)
{
    const std::size_t n = hyp.size();
    const std::size_t m = ref.size();

    // Full DP matrix so we can backtrace the operation breakdown.
    std::vector<std::vector<std::size_t>> d(
        n + 1, std::vector<std::size_t>(m + 1, 0));
    for (std::size_t i = 0; i <= n; ++i)
        d[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j)
        d[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            std::size_t sub =
                d[i - 1][j - 1] + (hyp[i - 1] == ref[j - 1] ? 0 : 1);
            std::size_t ins = d[i - 1][j] + 1;
            std::size_t del = d[i][j - 1] + 1;
            d[i][j] = std::min({sub, ins, del});
        }
    }

    EditOps ops;
    std::size_t i = n, j = m;
    while (i > 0 || j > 0) {
        if (i > 0 && j > 0 &&
            d[i][j] == d[i - 1][j - 1] +
                           (hyp[i - 1] == ref[j - 1] ? 0 : 1)) {
            if (hyp[i - 1] != ref[j - 1])
                ++ops.substitutions;
            --i;
            --j;
        } else if (i > 0 && d[i][j] == d[i - 1][j] + 1) {
            ++ops.insertions;
            --i;
        } else {
            ++ops.deletions;
            --j;
        }
    }
    return ops;
}

std::size_t
editDistance(const std::vector<std::string> &hyp,
             const std::vector<std::string> &ref)
{
    // Two-row DP; cheaper than editOps when the breakdown is unneeded.
    const std::size_t n = hyp.size();
    const std::size_t m = ref.size();
    std::vector<std::size_t> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            std::size_t sub =
                prev[j - 1] + (hyp[i - 1] == ref[j - 1] ? 0 : 1);
            cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

double
wordErrorRate(const std::vector<std::string> &hyp,
              const std::vector<std::string> &ref)
{
    if (ref.empty())
        return hyp.empty() ? 0.0 : static_cast<double>(hyp.size());
    return static_cast<double>(editDistance(hyp, ref)) /
           static_cast<double>(ref.size());
}

double
wordErrorRate(const std::string &hyp, const std::string &ref)
{
    return wordErrorRate(common::splitWhitespace(hyp),
                         common::splitWhitespace(ref));
}

} // namespace toltiers::stats
