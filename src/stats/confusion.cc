#include "stats/confusion.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::stats {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : classes_(classes), counts_(classes * classes, 0)
{
    TT_ASSERT(classes > 0, "confusion matrix needs classes");
}

void
ConfusionMatrix::add(std::size_t truth, std::size_t predicted)
{
    TT_ASSERT(truth < classes_ && predicted < classes_,
              "class label out of range");
    ++counts_[truth * classes_ + predicted];
    ++total_;
}

std::size_t
ConfusionMatrix::count(std::size_t truth, std::size_t predicted) const
{
    TT_ASSERT(truth < classes_ && predicted < classes_,
              "class label out of range");
    return counts_[truth * classes_ + predicted];
}

double
ConfusionMatrix::accuracy() const
{
    if (total_ == 0)
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t c = 0; c < classes_; ++c)
        correct += counts_[c * classes_ + c];
    return static_cast<double>(correct) /
           static_cast<double>(total_);
}

double
ConfusionMatrix::recall(std::size_t truth) const
{
    std::size_t row = 0;
    for (std::size_t p = 0; p < classes_; ++p)
        row += count(truth, p);
    if (row == 0)
        return 0.0;
    return static_cast<double>(count(truth, truth)) /
           static_cast<double>(row);
}

double
ConfusionMatrix::precision(std::size_t predicted) const
{
    std::size_t col = 0;
    for (std::size_t t = 0; t < classes_; ++t)
        col += count(t, predicted);
    if (col == 0)
        return 0.0;
    return static_cast<double>(count(predicted, predicted)) /
           static_cast<double>(col);
}

std::pair<std::size_t, std::size_t>
ConfusionMatrix::mostConfused() const
{
    std::pair<std::size_t, std::size_t> best{0, 0};
    std::size_t best_count = 0;
    for (std::size_t t = 0; t < classes_; ++t) {
        for (std::size_t p = 0; p < classes_; ++p) {
            if (t != p && count(t, p) > best_count) {
                best_count = count(t, p);
                best = {t, p};
            }
        }
    }
    return best;
}

std::string
ConfusionMatrix::render(const std::vector<std::string> &names) const
{
    TT_ASSERT(names.empty() || names.size() == classes_,
              "one name per class");
    auto name_of = [&](std::size_t c) {
        return names.empty() ? "c" + std::to_string(c) : names[c];
    };

    std::size_t width = 5;
    for (std::size_t c = 0; c < classes_; ++c)
        width = std::max(width, name_of(c).size() + 1);

    std::ostringstream oss;
    oss << std::string(width, ' ');
    for (std::size_t p = 0; p < classes_; ++p) {
        std::string n = name_of(p);
        oss << common::strprintf("%*s", static_cast<int>(width),
                                 n.c_str());
    }
    oss << common::strprintf("%*s\n", static_cast<int>(width),
                             "recall");
    for (std::size_t t = 0; t < classes_; ++t) {
        std::string n = name_of(t);
        oss << common::strprintf("%-*s", static_cast<int>(width),
                                 n.c_str());
        for (std::size_t p = 0; p < classes_; ++p) {
            oss << common::strprintf("%*zu",
                                     static_cast<int>(width),
                                     count(t, p));
        }
        oss << common::strprintf(
            "%*s\n", static_cast<int>(width),
            common::formatPercent(recall(t), 0).c_str());
    }
    return oss.str();
}

} // namespace toltiers::stats
