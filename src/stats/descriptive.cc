#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace toltiers::stats {

using common::panic;

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size() - 1);
}

double
stdev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
stdevPopulation(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
min(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("min of an empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
max(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("max of an empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
sum(const std::vector<double> &xs)
{
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean requires positive samples");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        panic("percentile of an empty sample");
    if (q < 0.0 || q > 100.0)
        panic("percentile q out of range: ", q);
    std::sort(xs.begin(), xs.end());
    double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    if (xs.empty())
        return s;
    s.n = xs.size();
    s.mean = mean(xs);
    s.stdev = stdev(xs);
    s.min = min(xs);
    s.p25 = percentile(xs, 25.0);
    s.median = percentile(xs, 50.0);
    s.p75 = percentile(xs, 75.0);
    s.p99 = percentile(xs, 99.0);
    s.max = max(xs);
    return s;
}

std::vector<double>
zscores(const std::vector<double> &xs)
{
    std::vector<double> out(xs.size(), 0.0);
    double sd = stdevPopulation(xs);
    if (sd == 0.0)
        return out;
    double m = mean(xs);
    for (std::size_t i = 0; i < xs.size(); ++i)
        out[i] = (xs[i] - m) / sd;
    return out;
}

} // namespace toltiers::stats
