/**
 * @file
 * Fixed-bin histogram used for per-request latency/error
 * distributions in the figure reproductions.
 */

#ifndef TOLTIERS_STATS_HISTOGRAM_HH
#define TOLTIERS_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace toltiers::stats {

/**
 * Equal-width histogram over [lo, hi). Samples outside the range are
 * clamped into the first/last bin so nothing is silently dropped.
 */
class Histogram
{
  public:
    /** @param bins number of bins (>= 1); [lo, hi) with lo < hi. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double x);

    /** Record many samples. */
    void addAll(const std::vector<double> &xs);

    /** Count in bin b. */
    std::size_t count(std::size_t b) const { return counts_[b]; }

    /** Total recorded samples. */
    std::size_t total() const { return total_; }

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Inclusive lower edge of bin b. */
    double binLow(std::size_t b) const;

    /** Exclusive upper edge of bin b. */
    double binHigh(std::size_t b) const;

    /** Fraction of samples in bin b (0 if empty histogram). */
    double fraction(std::size_t b) const;

    /** Cumulative fraction of samples in bins [0, b]. */
    double cumulativeFraction(std::size_t b) const;

    /** ASCII rendering: one row per bin with a proportional bar. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_HISTOGRAM_HH
