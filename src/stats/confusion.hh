/**
 * @file
 * Confusion matrix for classification analysis: which classes a
 * model version confuses, per-class recall/precision, and a
 * plain-text rendering used by the IC benches.
 */

#ifndef TOLTIERS_STATS_CONFUSION_HH
#define TOLTIERS_STATS_CONFUSION_HH

#include <cstddef>
#include <string>
#include <vector>

namespace toltiers::stats {

/** Square confusion matrix over integer class labels. */
class ConfusionMatrix
{
  public:
    /** @param classes number of classes (>= 1). */
    explicit ConfusionMatrix(std::size_t classes);

    /** Record one (truth, prediction) pair. */
    void add(std::size_t truth, std::size_t predicted);

    /** Count of (truth, predicted). */
    std::size_t count(std::size_t truth, std::size_t predicted) const;

    std::size_t classes() const { return classes_; }

    /** Total recorded samples. */
    std::size_t total() const { return total_; }

    /** Overall accuracy (0 for an empty matrix). */
    double accuracy() const;

    /** Recall of one class (0 when the class never occurred). */
    double recall(std::size_t truth) const;

    /** Precision of one class (0 when it was never predicted). */
    double precision(std::size_t predicted) const;

    /**
     * The most-confused pair: the off-diagonal cell with the
     * largest count, as (truth, predicted). Returns (0, 0) when no
     * confusion was recorded.
     */
    std::pair<std::size_t, std::size_t> mostConfused() const;

    /**
     * Plain-text rendering with optional class names (must have one
     * name per class when provided).
     */
    std::string
    render(const std::vector<std::string> &names = {}) const;

  private:
    std::size_t classes_;
    std::size_t total_ = 0;
    std::vector<std::size_t> counts_; //!< Row-major [truth][pred].
};

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_CONFUSION_HH
