/**
 * @file
 * Pareto-frontier filtering over (latency, error) points.
 *
 * The paper studies service versions "that encompass the
 * pareto-optimal accuracy-latency trade-off space"; this helper
 * selects that frontier from a grid-searched candidate set.
 */

#ifndef TOLTIERS_STATS_PARETO_HH
#define TOLTIERS_STATS_PARETO_HH

#include <cstddef>
#include <vector>

namespace toltiers::stats {

/** A candidate operating point: both coordinates are "lower better". */
struct ParetoPoint
{
    double latency = 0.0;
    double error = 0.0;
    std::size_t tag = 0; //!< Caller-defined identifier (e.g. index).
};

/**
 * True if a dominates b: no worse on both axes and strictly better on
 * at least one.
 */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * Return the non-dominated subset, sorted by ascending latency.
 * Duplicate points are kept once (first occurrence wins).
 */
std::vector<ParetoPoint>
paretoFrontier(const std::vector<ParetoPoint> &points);

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_PARETO_HH
