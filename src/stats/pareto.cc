#include "stats/pareto.hh"

#include <algorithm>
#include <limits>

namespace toltiers::stats {

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    bool no_worse = a.latency <= b.latency && a.error <= b.error;
    bool better = a.latency < b.latency || a.error < b.error;
    return no_worse && better;
}

std::vector<ParetoPoint>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<ParetoPoint> sorted = points;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ParetoPoint &a, const ParetoPoint &b) {
                         if (a.latency != b.latency)
                             return a.latency < b.latency;
                         return a.error < b.error;
                     });

    std::vector<ParetoPoint> frontier;
    double best_error = std::numeric_limits<double>::infinity();
    for (const auto &p : sorted) {
        if (p.error < best_error) {
            frontier.push_back(p);
            best_error = p.error;
        }
    }
    return frontier;
}

} // namespace toltiers::stats
