#include "stats/correlation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "stats/descriptive.hh"

namespace toltiers::stats {

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    TT_ASSERT(xs.size() == ys.size(),
              "correlation needs equal-length samples");
    if (xs.size() < 2)
        return 0.0;
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
fractionalRanks(const std::vector<double> &xs)
{
    std::vector<std::size_t> order(xs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return xs[a] < xs[b];
              });

    std::vector<double> ranks(xs.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j + 1 < order.size() &&
               xs[order[j + 1]] == xs[order[i]]) {
            ++j;
        }
        // Average rank over the tie run [i, j], 1-based.
        double avg = (static_cast<double>(i) +
                      static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg;
        i = j + 1;
    }
    return ranks;
}

double
spearman(const std::vector<double> &xs, const std::vector<double> &ys)
{
    TT_ASSERT(xs.size() == ys.size(),
              "correlation needs equal-length samples");
    return pearson(fractionalRanks(xs), fractionalRanks(ys));
}

double
pointBiserial(const std::vector<bool> &labels,
              const std::vector<double> &scores)
{
    std::vector<double> numeric(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i)
        numeric[i] = labels[i] ? 1.0 : 0.0;
    return pearson(numeric, scores);
}

} // namespace toltiers::stats
