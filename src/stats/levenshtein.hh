/**
 * @file
 * Token-level edit distance and the word error rate (WER) metric used
 * to score ASR hypotheses against reference transcripts.
 */

#ifndef TOLTIERS_STATS_LEVENSHTEIN_HH
#define TOLTIERS_STATS_LEVENSHTEIN_HH

#include <cstddef>
#include <string>
#include <vector>

namespace toltiers::stats {

/** Breakdown of the minimum-cost alignment between two sequences. */
struct EditOps
{
    std::size_t insertions = 0;    //!< Tokens in hyp but not ref.
    std::size_t deletions = 0;     //!< Tokens in ref missing from hyp.
    std::size_t substitutions = 0; //!< Mismatched aligned tokens.

    /** Total number of word errors. */
    std::size_t total() const
    {
        return insertions + deletions + substitutions;
    }
};

/**
 * Minimum edit distance (unit costs) between hypothesis and reference
 * token sequences, with the operation breakdown of one optimal
 * alignment.
 */
EditOps editOps(const std::vector<std::string> &hyp,
                const std::vector<std::string> &ref);

/** Plain minimum edit distance. */
std::size_t editDistance(const std::vector<std::string> &hyp,
                         const std::vector<std::string> &ref);

/**
 * Word error rate: word errors between hypothesis and reference,
 * divided by the reference length. An empty reference with a
 * non-empty hypothesis scores 1.0 per inserted word; empty/empty
 * scores 0.
 */
double wordErrorRate(const std::vector<std::string> &hyp,
                     const std::vector<std::string> &ref);

/** WER over whitespace-tokenized strings. */
double wordErrorRate(const std::string &hyp, const std::string &ref);

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_LEVENSHTEIN_HH
