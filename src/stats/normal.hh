/**
 * @file
 * Standard normal distribution functions, including the inverse CDF
 * (percent-point function) that the routing-rule generator uses to
 * translate confidence levels into z thresholds, mirroring
 * scipy.stats.norm.ppf in the paper's Fig. 7 pseudo-code.
 */

#ifndef TOLTIERS_STATS_NORMAL_HH
#define TOLTIERS_STATS_NORMAL_HH

namespace toltiers::stats {

/** Standard normal probability density at x. */
double normalPdf(double x);

/** Standard normal cumulative distribution at x. */
double normalCdf(double x);

/**
 * Inverse standard normal CDF (percent-point function).
 *
 * Uses Acklam's rational approximation (relative error < 1.15e-9)
 * refined with one Halley step. Panics for p outside (0, 1).
 */
double normalPpf(double p);

/**
 * Two-sided z threshold for the given confidence level, e.g.
 * confidence = 0.999 yields ppf(0.9995) ~= 3.29.
 */
double zForConfidence(double confidence);

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_NORMAL_HH
