#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::stats {

using common::panic;

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(lo < hi))
        panic("histogram requires lo < hi");
    if (bins == 0)
        panic("histogram requires at least one bin");
}

void
Histogram::add(double x)
{
    double t = (x - lo_) / (hi_ - lo_);
    auto b = static_cast<long>(
        std::floor(t * static_cast<double>(counts_.size())));
    b = std::clamp<long>(b, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(b)];
    ++total_;
}

void
Histogram::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

double
Histogram::binLow(std::size_t b) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                     static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t b) const
{
    return binLow(b + 1);
}

double
Histogram::fraction(std::size_t b) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_[b]) /
           static_cast<double>(total_);
}

double
Histogram::cumulativeFraction(std::size_t b) const
{
    if (total_ == 0)
        return 0.0;
    std::size_t acc = 0;
    for (std::size_t i = 0; i <= b && i < counts_.size(); ++i)
        acc += counts_[i];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 0;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);

    std::ostringstream oss;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        std::size_t bar =
            peak == 0 ? 0 : counts_[b] * width / peak;
        oss << common::strprintf("[%10.4g, %10.4g) %8zu |",
                                 binLow(b), binHigh(b), counts_[b]);
        oss << std::string(bar, '#') << '\n';
    }
    return oss.str();
}

} // namespace toltiers::stats
