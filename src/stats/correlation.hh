/**
 * @file
 * Correlation measures, used to quantify how informative a model's
 * confidence signal is about its correctness — the property the
 * escalation policies depend on.
 */

#ifndef TOLTIERS_STATS_CORRELATION_HH
#define TOLTIERS_STATS_CORRELATION_HH

#include <vector>

namespace toltiers::stats {

/**
 * Pearson product-moment correlation of two equal-length samples.
 * Returns 0 when either sample is degenerate (zero variance).
 */
double pearson(const std::vector<double> &xs,
               const std::vector<double> &ys);

/**
 * Spearman rank correlation (Pearson over fractional ranks, with
 * ties sharing their average rank). Robust to monotone rescaling —
 * appropriate for confidence scores, which are only meaningful up
 * to ordering.
 */
double spearman(const std::vector<double> &xs,
                const std::vector<double> &ys);

/**
 * Point-biserial correlation between a binary label sequence and a
 * continuous score (Pearson with the labels as 0/1). Used for
 * confidence-vs-correctness.
 */
double pointBiserial(const std::vector<bool> &labels,
                     const std::vector<double> &scores);

/** Fractional ranks of a sample (ties averaged), 1-based. */
std::vector<double> fractionalRanks(const std::vector<double> &xs);

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_CORRELATION_HH
