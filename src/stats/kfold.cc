#include "stats/kfold.hh"

#include "common/logging.hh"

namespace toltiers::stats {

using common::panic;

std::vector<Fold>
kfold(std::size_t n, std::size_t k, common::Pcg32 &rng)
{
    if (k < 2 || k > n)
        panic("kfold requires 2 <= k <= n (k=", k, ", n=", n, ")");

    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    rng.shuffle(perm);

    std::vector<Fold> folds(k);
    // Assign test indices round-robin over the shuffled permutation so
    // fold sizes differ by at most one.
    for (std::size_t i = 0; i < n; ++i)
        folds[i % k].test.push_back(perm[i]);
    for (std::size_t f = 0; f < k; ++f) {
        for (std::size_t g = 0; g < k; ++g) {
            if (g == f)
                continue;
            folds[f].train.insert(folds[f].train.end(),
                                  folds[g].test.begin(),
                                  folds[g].test.end());
        }
    }
    return folds;
}

} // namespace toltiers::stats
