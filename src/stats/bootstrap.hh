/**
 * @file
 * Bootstrap resampling (Efron) utilities.
 *
 * The routing-rule generator repeatedly simulates a configuration on
 * random subsamples of the training data ("trials") until the trial
 * statistics reach a target confidence; the helpers here provide both
 * the classic fixed-trial bootstrap and that adaptive stopping rule.
 */

#ifndef TOLTIERS_STATS_BOOTSTRAP_HH
#define TOLTIERS_STATS_BOOTSTRAP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.hh"

namespace toltiers::stats {

/** Result of a fixed-trial bootstrap of a scalar statistic. */
struct BootstrapResult
{
    std::vector<double> estimates; //!< One statistic value per trial.
    double mean = 0.0;
    double stdev = 0.0;
    double ciLow = 0.0;  //!< Percentile CI lower bound.
    double ciHigh = 0.0; //!< Percentile CI upper bound.
    double worst = 0.0;  //!< Max over trials (conservative bound).
};

/**
 * Classic bootstrap: resample `data` with replacement `trials` times,
 * apply `statistic` to each resample, and summarize with a two-sided
 * percentile confidence interval at the given level.
 */
BootstrapResult
bootstrap(const std::vector<double> &data,
          const std::function<double(const std::vector<double> &)>
              &statistic,
          std::size_t trials, double confidence, common::Pcg32 &rng);

/**
 * Fixed-trial bootstrap with the trials resampled in parallel on
 * the shared pool. Unlike bootstrap(), which threads one RNG
 * through the trials sequentially, every trial here draws from its
 * own splitmix64-derived stream keyed by (seed, trial), and the
 * estimates land in trial order — the result is a pure function of
 * (data, statistic, trials, confidence, seed), bit-identical for
 * any thread count. `statistic` must be safe to call concurrently.
 */
BootstrapResult
bootstrapParallel(const std::vector<double> &data,
                  const std::function<double(
                      const std::vector<double> &)> &statistic,
                  std::size_t trials, double confidence,
                  std::uint64_t seed);

/**
 * Adaptive confidence check from the paper's rule generator: a metric
 * series is "confident" once its empirical z-scores span the two-sided
 * z threshold for the requested confidence level, i.e. the trials have
 * exhibited enough dispersion that the extreme order statistics are
 * trustworthy worst-case estimates.
 */
bool spreadConfident(const std::vector<double> &vals, double confidence);

/**
 * Adaptive bootstrap loop: draw subsamples of size
 * max(1, n / subsampleDivisor) without replacement, evaluate
 * `statistic` on each, and stop when spreadConfident() holds (or
 * maxTrials is reached, whichever is first). At least minTrials
 * trials are always run.
 *
 * Returns the full trial series; callers typically take max() as the
 * worst-case estimate, as the paper's generator does.
 */
std::vector<double>
adaptiveBootstrap(std::size_t population_size,
                  const std::function<double(
                      const std::vector<std::size_t> &)> &statistic,
                  double confidence, common::Pcg32 &rng,
                  std::size_t subsample_divisor = 10,
                  std::size_t min_trials = 8,
                  std::size_t max_trials = 512);

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_BOOTSTRAP_HH
