/**
 * @file
 * K-fold cross-validation index splits, used to validate the
 * routing-rule generator's accuracy guarantees on held-out data as
 * the paper does (10-fold CV).
 */

#ifndef TOLTIERS_STATS_KFOLD_HH
#define TOLTIERS_STATS_KFOLD_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"

namespace toltiers::stats {

/** One train/test split. */
struct Fold
{
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
};

/**
 * Produce k shuffled folds over [0, n). Every index appears in exactly
 * one test set; fold sizes differ by at most one. Requires 2 <= k <= n.
 */
std::vector<Fold> kfold(std::size_t n, std::size_t k,
                        common::Pcg32 &rng);

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_KFOLD_HH
