/**
 * @file
 * K-fold cross-validation index splits, used to validate the
 * routing-rule generator's accuracy guarantees on held-out data as
 * the paper does (10-fold CV).
 */

#ifndef TOLTIERS_STATS_KFOLD_HH
#define TOLTIERS_STATS_KFOLD_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"
#include "exec/parallel.hh"

namespace toltiers::stats {

/** One train/test split. */
struct Fold
{
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
};

/**
 * Produce k shuffled folds over [0, n). Every index appears in exactly
 * one test set; fold sizes differ by at most one. Requires 2 <= k <= n.
 */
std::vector<Fold> kfold(std::size_t n, std::size_t k,
                        common::Pcg32 &rng);

/**
 * Run fn(f, fold) for every fold of a k-fold split, folds in
 * parallel on the shared pool, results in fold order. The split is
 * drawn from `rng` before any fold runs, so the fold assignment —
 * and therefore the result vector — is bit-identical for any
 * thread count. fn must be safe to call concurrently (give each
 * fold its own derived seed; see exec/rng.hh).
 */
template <typename T, typename Fn>
std::vector<T>
crossValidate(std::size_t n, std::size_t k, common::Pcg32 &rng,
              Fn &&fn)
{
    auto folds = kfold(n, k, rng);
    return exec::parallelMap<T>(
        exec::globalPool(), folds.size(),
        [&](std::size_t f) { return fn(f, folds[f]); });
}

} // namespace toltiers::stats

#endif // TOLTIERS_STATS_KFOLD_HH
