#include "stats/bootstrap.hh"

#include <algorithm>

#include "common/logging.hh"
#include "exec/parallel.hh"
#include "exec/rng.hh"
#include "stats/descriptive.hh"
#include "stats/normal.hh"

namespace toltiers::stats {

using common::panic;

BootstrapResult
bootstrap(const std::vector<double> &data,
          const std::function<double(const std::vector<double> &)>
              &statistic,
          std::size_t trials, double confidence, common::Pcg32 &rng)
{
    if (data.empty())
        panic("bootstrap on an empty sample");
    if (trials == 0)
        panic("bootstrap requires at least one trial");

    BootstrapResult res;
    res.estimates.reserve(trials);
    std::vector<double> resample(data.size());
    for (std::size_t t = 0; t < trials; ++t) {
        auto idx = rng.sampleWithReplacement(data.size(), data.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            resample[i] = data[idx[i]];
        res.estimates.push_back(statistic(resample));
    }
    res.mean = mean(res.estimates);
    res.stdev = stdev(res.estimates);
    double alpha = 1.0 - confidence;
    res.ciLow = percentile(res.estimates, 100.0 * (alpha / 2.0));
    res.ciHigh = percentile(res.estimates, 100.0 * (1.0 - alpha / 2.0));
    res.worst = max(res.estimates);
    return res;
}

BootstrapResult
bootstrapParallel(const std::vector<double> &data,
                  const std::function<double(
                      const std::vector<double> &)> &statistic,
                  std::size_t trials, double confidence,
                  std::uint64_t seed)
{
    if (data.empty())
        panic("bootstrap on an empty sample");
    if (trials == 0)
        panic("bootstrap requires at least one trial");

    BootstrapResult res;
    // Chunked so each task amortizes its resample buffer; per-trial
    // streams keep the estimate series independent of scheduling.
    res.estimates = exec::parallelMap<double>(
        exec::globalPool(), trials,
        [&](std::size_t t) {
            common::Pcg32 rng = exec::taskRng(seed, t);
            auto idx =
                rng.sampleWithReplacement(data.size(), data.size());
            std::vector<double> resample(data.size());
            for (std::size_t i = 0; i < idx.size(); ++i)
                resample[i] = data[idx[i]];
            return statistic(resample);
        },
        /*grain=*/8);
    res.mean = mean(res.estimates);
    res.stdev = stdev(res.estimates);
    double alpha = 1.0 - confidence;
    res.ciLow = percentile(res.estimates, 100.0 * (alpha / 2.0));
    res.ciHigh = percentile(res.estimates, 100.0 * (1.0 - alpha / 2.0));
    res.worst = max(res.estimates);
    return res;
}

bool
spreadConfident(const std::vector<double> &vals, double confidence)
{
    if (vals.size() < 2)
        return false;
    auto zs = zscores(vals);
    double zmin = min(zs);
    double zmax = max(zs);
    // Degenerate series (all trials equal) cannot spread; treat a
    // zero-variance series as confident — the statistic is exact.
    if (zmin == 0.0 && zmax == 0.0)
        return true;
    double z = zForConfidence(confidence);
    return (zmin < -z && zmax > z) || (zmax - zmin > 2.0 * z);
}

std::vector<double>
adaptiveBootstrap(std::size_t population_size,
                  const std::function<double(
                      const std::vector<std::size_t> &)> &statistic,
                  double confidence, common::Pcg32 &rng,
                  std::size_t subsample_divisor,
                  std::size_t min_trials, std::size_t max_trials)
{
    if (population_size == 0)
        panic("adaptiveBootstrap on an empty population");
    if (subsample_divisor == 0)
        panic("subsample_divisor must be positive");
    std::size_t k =
        std::max<std::size_t>(1, population_size / subsample_divisor);

    std::vector<double> trials;
    trials.reserve(min_trials);
    while (trials.size() < max_trials) {
        auto idx = rng.sampleWithoutReplacement(population_size, k);
        trials.push_back(statistic(idx));
        if (trials.size() >= min_trials &&
            spreadConfident(trials, confidence)) {
            break;
        }
    }
    return trials;
}

} // namespace toltiers::stats
