/**
 * @file
 * serving::ServiceVersion adapter for an image-classification
 * Classifier bound to an image workload and an instance type.
 */

#ifndef TOLTIERS_IC_SERVICE_HH
#define TOLTIERS_IC_SERVICE_HH

#include "dataset/synth_images.hh"
#include "ic/classifier.hh"
#include "serving/instance.hh"
#include "serving/service_version.hh"

namespace toltiers::ic {

/** One deployed IC service version. */
class IcServiceVersion : public serving::ServiceVersion
{
  public:
    /**
     * All referents must outlive the adapter.
     * @param classifier the trained version.
     * @param workload the bound request payload set.
     * @param instance the machine type the version is deployed on.
     */
    IcServiceVersion(const Classifier &classifier,
                     const dataset::ImageSet &workload,
                     const serving::InstanceType &instance);

    const std::string &name() const override;
    const std::string &instanceName() const override;
    std::size_t workloadSize() const override;
    serving::VersionResult process(std::size_t index) const override;

  private:
    const Classifier &classifier_;
    const dataset::ImageSet &workload_;
    const serving::InstanceType &instance_;
};

} // namespace toltiers::ic

#endif // TOLTIERS_IC_SERVICE_HH
