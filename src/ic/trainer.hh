/**
 * @file
 * Zoo training driver with an on-disk weight cache, so benchmark
 * binaries and examples share one training run per configuration.
 */

#ifndef TOLTIERS_IC_TRAINER_HH
#define TOLTIERS_IC_TRAINER_HH

#include <string>
#include <vector>

#include "dataset/synth_images.hh"
#include "ic/classifier.hh"

namespace toltiers::ic {

/** Zoo training options. */
struct ZooTrainConfig
{
    std::uint64_t seed = 99;
    std::string cacheDir;      //!< Empty disables the weight cache.
    bool verbose = false;      //!< Log per-epoch stats.
    std::size_t epochOverride = 0; //!< Nonzero overrides spec epochs.
};

/**
 * Train (or load from cache) every zoo version on the given training
 * set and return the ready classifiers, fastest version first.
 *
 * Cache files are named <cacheDir>/<name>-<key>.ttw where the key
 * hashes the training configuration, seed, and dataset fingerprint,
 * so stale caches are never reused across configurations.
 */
std::vector<Classifier> trainZoo(const dataset::ImageSet &train,
                                 const ZooTrainConfig &cfg);

/** Default cache directory: $TOLTIERS_CACHE or "toltiers_cache". */
std::string defaultCacheDir();

} // namespace toltiers::ic

#endif // TOLTIERS_IC_TRAINER_HH
