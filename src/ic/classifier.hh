/**
 * @file
 * Classifier: one trained zoo network bound to a latency model —
 * a deployable image-classification service version.
 *
 * Latency model: reference (cpu-small) latency is a fixed
 * per-invocation overhead (request handling, decode, feature prep)
 * plus the network's MACs at a calibrated MAC rate. The overhead
 * term keeps the version latency spread in the ~5x range the paper
 * reports rather than the raw 250x compute spread.
 */

#ifndef TOLTIERS_IC_CLASSIFIER_HH
#define TOLTIERS_IC_CLASSIFIER_HH

#include <memory>
#include <string>

#include "dataset/synth_images.hh"
#include "ic/zoo.hh"
#include "nn/network.hh"

namespace toltiers::ic {

/** Reference-machine latency model for one invocation. */
struct IcLatencyModel
{
    double overheadSeconds = 0.020; //!< Fixed per-invocation cost.
    double secondsPerMac = 4.0e-8;  //!< Compute cost per MAC.

    /**
     * Invocation latency. @param speed_factor accelerates the
     * compute term only — request handling and decode overhead do
     * not ride the accelerator, which is why small models gain
     * nothing from a GPU.
     */
    double
    latency(std::uint64_t macs, double speed_factor = 1.0) const
    {
        return overheadSeconds +
               secondsPerMac * static_cast<double>(macs) /
                   speed_factor;
    }
};

/** One classification outcome. */
struct IcResult
{
    std::size_t label = 0;
    std::string className;
    double confidence = 0.0;     //!< Softmax top-1 probability.
    double margin = 0.0;         //!< Top-1 minus top-2 probability.
    std::uint64_t macs = 0;
    double latencySeconds = 0.0; //!< Reference-machine latency.
};

/** A trained network packaged as a classification service version. */
class Classifier
{
  public:
    /**
     * @param spec zoo member description.
     * @param net trained network (ownership transferred).
     * @param image_shape CHW shape of one input sample.
     */
    Classifier(IcVersionSpec spec, nn::Network net,
               std::vector<std::size_t> image_shape,
               IcLatencyModel latency = IcLatencyModel());

    /** Classify sample `index` of the set. */
    IcResult classify(const dataset::ImageSet &set,
                      std::size_t index) const;

    /** Classify a whole set at once (batched, for evaluation). */
    std::vector<IcResult> classifyAll(const dataset::ImageSet &set,
                                      std::size_t batch = 64) const;

    const IcVersionSpec &spec() const { return spec_; }
    const std::string &name() const { return spec_.name; }
    std::uint64_t macsPerImage() const { return macsPerImage_; }
    const IcLatencyModel &latencyModel() const { return latency_; }
    nn::Network &network() { return net_; }

  private:
    IcVersionSpec spec_;
    mutable nn::Network net_; //!< forward() caches activations.
    IcLatencyModel latency_;
    std::uint64_t macsPerImage_ = 0;
};

} // namespace toltiers::ic

#endif // TOLTIERS_IC_CLASSIFIER_HH
