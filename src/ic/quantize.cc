#include "ic/quantize.hh"

#include <numeric>

#include "common/logging.hh"
#include "nn/quantized.hh"
#include "nn/sgd.hh"

namespace toltiers::ic {

IcVersionSpec
quantizedSpec(const IcVersionSpec &parent)
{
    IcVersionSpec spec = parent;
    spec.name = parent.name + kQuantizedSuffix;
    spec.roleLabel = parent.roleLabel + " (int8)";
    return spec;
}

Classifier
quantizeClassifier(Classifier &parent,
                   const dataset::ImageSet &calibration,
                   std::size_t calib_count)
{
    TT_ASSERT(calibration.count() > 0,
              "quantization needs calibration images");
    std::size_t n = std::min(calib_count, calibration.count());
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0);
    tensor::Tensor calib =
        nn::gatherBatch(calibration.images, rows);

    nn::Network qnet = nn::quantizeNetwork(
        parent.network(), calib,
        parent.network().name() + kQuantizedSuffix);

    const tensor::Shape &ishape = calibration.images.shape();
    std::vector<std::size_t> image_shape = {ishape[1], ishape[2],
                                            ishape[3]};

    IcLatencyModel latency = parent.latencyModel();
    latency.secondsPerMac *= kInt8MacRateFactor;

    return Classifier(quantizedSpec(parent.spec()), std::move(qnet),
                      image_shape, latency);
}

std::vector<Classifier>
quantizeZoo(std::vector<Classifier> &zoo,
            const dataset::ImageSet &calibration,
            std::size_t calib_count)
{
    std::vector<Classifier> out;
    out.reserve(zoo.size());
    for (Classifier &c : zoo)
        out.push_back(
            quantizeClassifier(c, calibration, calib_count));
    return out;
}

} // namespace toltiers::ic
