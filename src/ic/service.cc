#include "ic/service.hh"

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "obs/metrics.hh"

namespace toltiers::ic {

IcServiceVersion::IcServiceVersion(
    const Classifier &classifier, const dataset::ImageSet &workload,
    const serving::InstanceType &instance)
    : classifier_(classifier), workload_(workload),
      instance_(instance)
{
}

const std::string &
IcServiceVersion::name() const
{
    return classifier_.name();
}

const std::string &
IcServiceVersion::instanceName() const
{
    return instance_.name;
}

std::size_t
IcServiceVersion::workloadSize() const
{
    return workload_.count();
}

serving::VersionResult
IcServiceVersion::process(std::size_t index) const
{
#if TOLTIERS_OBS_ENABLED
    common::Stopwatch wall;
#endif
    IcResult r = classifier_.classify(workload_, index);

#if TOLTIERS_OBS_ENABLED
    if (obs::metricsEnabled()) {
        obs::Registry::global()
            .histogram("tt_inference_wall_seconds",
                       {{"service", "ic"},
                        {"version", classifier_.name()}},
                       {},
                       "Measured per-invocation forward wall time")
            .observe(wall.seconds());
    }
#endif

    serving::VersionResult out;
    out.output = r.className;
    out.confidence = r.confidence;
    out.latencySeconds = classifier_.latencyModel().latency(
        r.macs, instance_.speedFactor);
    out.costDollars =
        out.latencySeconds * instance_.pricePerSecond();
    // Top-1 error is binary (paper §II-B).
    out.error = r.label == workload_.labels[index] ? 0.0 : 1.0;
    out.workUnits = r.macs;
    return out;
}

} // namespace toltiers::ic
