/**
 * @file
 * The image-classification model zoo: five architectures of
 * increasing capacity, standing in for the paper's SqueezeNet /
 * AlexNet / GoogLeNet / ResNet / VGG ladder (see DESIGN.md's
 * substitution table). Capacity — and therefore both top-1 accuracy
 * and MAC count — increases monotonically from v1 to v5.
 */

#ifndef TOLTIERS_IC_ZOO_HH
#define TOLTIERS_IC_ZOO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hh"
#include "nn/sgd.hh"

namespace toltiers::ic {

/** Static description of one zoo member. */
struct IcVersionSpec
{
    std::string name;       //!< e.g. "cnn-m".
    std::string roleLabel;  //!< Paper counterpart, e.g. "googlenet".
    std::string instance;   //!< Default deployment instance type.
    nn::SgdConfig training; //!< Hyper-parameters used to train it.
};

/** Specs of the five canonical versions, fastest first. */
std::vector<IcVersionSpec> zooSpecs();

/**
 * Construct the (untrained) network for a spec name; fatal() on an
 * unknown name. @param image_size square input edge length,
 * @param classes output classes, @param rng weight initialization.
 */
nn::Network buildZooNetwork(const std::string &name,
                            std::size_t image_size,
                            std::size_t classes, common::Pcg32 &rng);

} // namespace toltiers::ic

#endif // TOLTIERS_IC_ZOO_HH
