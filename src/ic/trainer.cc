#include "ic/trainer.hh"

#include <cstdlib>
#include <filesystem>

#include "common/logging.hh"
#include "common/strings.hh"
#include "nn/serialize.hh"
#include "nn/sgd.hh"

namespace toltiers::ic {

using common::inform;

namespace {

/** FNV-1a over the bytes that determine a training outcome. */
std::uint64_t
cacheKey(const dataset::ImageSet &train, const IcVersionSpec &spec,
         std::uint64_t seed)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    mix(seed);
    mix(train.count());
    mix(train.images.dim(2));
    mix(spec.training.epochs);
    mix(static_cast<std::uint64_t>(spec.training.learningRate * 1e6));
    // Dataset fingerprint: a strided sample of pixels and labels.
    for (std::size_t i = 0; i < train.images.size();
         i += 1 + train.images.size() / 64) {
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(train.images[i] * 1e4)));
    }
    for (std::size_t i = 0; i < train.labels.size();
         i += 1 + train.labels.size() / 64) {
        mix(train.labels[i]);
    }
    for (char c : spec.name)
        mix(static_cast<std::uint64_t>(c));
    return h;
}

} // namespace

std::string
defaultCacheDir()
{
    const char *env = std::getenv("TOLTIERS_CACHE");
    return env != nullptr ? env : "toltiers_cache";
}

std::vector<Classifier>
trainZoo(const dataset::ImageSet &train, const ZooTrainConfig &cfg)
{
    std::size_t size = train.images.dim(2);
    std::vector<std::size_t> image_shape = {1, size, size};

    if (!cfg.cacheDir.empty())
        std::filesystem::create_directories(cfg.cacheDir);

    std::vector<Classifier> zoo;
    common::Pcg32 seed_rng(cfg.seed);
    for (IcVersionSpec spec : zooSpecs()) {
        if (cfg.epochOverride > 0)
            spec.training.epochs = cfg.epochOverride;
        common::Pcg32 rng = seed_rng.split();
        nn::Network net = buildZooNetwork(spec.name, size,
                                          train.classes, rng);

        std::string cache_path;
        bool loaded = false;
        if (!cfg.cacheDir.empty()) {
            cache_path = cfg.cacheDir + "/" + spec.name + "-" +
                         common::strprintf(
                             "%016llx",
                             static_cast<unsigned long long>(
                                 cacheKey(train, spec, cfg.seed))) +
                         ".ttw";
            loaded = nn::loadWeights(net, cache_path);
        }

        if (!loaded) {
            if (cfg.verbose)
                inform("training ", spec.name, " (",
                       net.parameterCount(), " params)");
            nn::SgdTrainer trainer(spec.training);
            trainer.train(
                net, train.images, train.labels, rng,
                [&](const nn::EpochStats &e) {
                    if (cfg.verbose) {
                        inform("  ", spec.name, " epoch ", e.epoch,
                               " loss=",
                               common::formatFixed(e.loss, 4),
                               " acc=",
                               common::formatPercent(e.accuracy));
                    }
                });
            if (!cache_path.empty())
                nn::saveWeights(net, cache_path);
        } else if (cfg.verbose) {
            inform("loaded ", spec.name, " from cache");
        }

        zoo.emplace_back(spec, std::move(net), image_shape);
    }
    return zoo;
}

} // namespace toltiers::ic
