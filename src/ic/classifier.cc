#include "ic/classifier.hh"

#include "common/logging.hh"
#include "nn/sgd.hh"
#include "tensor/arena.hh"

namespace toltiers::ic {

Classifier::Classifier(IcVersionSpec spec, nn::Network net,
                       std::vector<std::size_t> image_shape,
                       IcLatencyModel latency)
    : spec_(std::move(spec)), net_(std::move(net)), latency_(latency)
{
    macsPerImage_ = net_.macsPerSample(image_shape);
}

IcResult
Classifier::classify(const dataset::ImageSet &set,
                     std::size_t index) const
{
    TT_ASSERT(index < set.count(), "image index out of range");
    // Per-request scratch comes from the thread's bump arena: after
    // one warmup request has sized it, the steady-state path is free
    // of heap allocations (see tensor/arena.hh).
    tensor::Arena &arena = tensor::inferenceArena();
    arena.reset();
    tensor::ArenaScope scope(arena);
    tensor::Tensor batch = nn::gatherBatch(set.images, {index});
    auto preds = net_.predict(batch);

    IcResult res;
    res.label = preds[0].label;
    res.className = dataset::imageClassName(res.label);
    res.confidence = preds[0].confidence;
    res.margin = preds[0].margin;
    res.macs = macsPerImage_;
    res.latencySeconds = latency_.latency(res.macs);
    return res;
}

std::vector<IcResult>
Classifier::classifyAll(const dataset::ImageSet &set,
                        std::size_t batch) const
{
    std::vector<IcResult> out;
    out.reserve(set.count());
    for (std::size_t start = 0; start < set.count(); start += batch) {
        std::size_t end = std::min(set.count(), start + batch);
        std::vector<std::size_t> rows;
        rows.reserve(end - start);
        for (std::size_t i = start; i < end; ++i)
            rows.push_back(i);
        tensor::Arena &arena = tensor::inferenceArena();
        arena.reset();
        tensor::ArenaScope scope(arena);
        tensor::Tensor b = nn::gatherBatch(set.images, rows);
        auto preds = net_.predict(b);
        for (const auto &p : preds) {
            IcResult res;
            res.label = p.label;
            res.className = dataset::imageClassName(p.label);
            res.confidence = p.confidence;
            res.margin = p.margin;
            res.macs = macsPerImage_;
            res.latencySeconds = latency_.latency(res.macs);
            out.push_back(res);
        }
    }
    return out;
}

} // namespace toltiers::ic
