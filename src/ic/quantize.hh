/**
 * @file
 * int8 quantized zoo variants as first-class service versions.
 *
 * Each trained float classifier can be post-training-quantized into
 * a "<name>-q8" sibling: same architecture and MAC count, int8
 * weights and activations, a small accuracy haircut, and a faster
 * modeled compute rate. The siblings are ordinary Classifiers, so
 * the measurement collector, rule generator, tier fallback chains,
 * cache tolerance gate, and front door all route to them exactly
 * like any float version — they simply widen the accuracy–latency
 * Pareto frontier (the INFaaS/Loki variant-serving idea from
 * PAPERS.md applied to the paper's tolerance-tier machinery).
 */

#ifndef TOLTIERS_IC_QUANTIZE_HH
#define TOLTIERS_IC_QUANTIZE_HH

#include <cstddef>
#include <vector>

#include "ic/classifier.hh"

namespace toltiers::ic {

/**
 * Modeled int8 compute-rate multiplier on secondsPerMac. The value
 * is a fixed constant — not re-measured per run — so version
 * latencies stay deterministic; 0.5 is the rounded-down speedup of
 * the int8 GEMM over the float reference observed in
 * bench/micro_kernels (BENCH_kernels.json). Per-invocation overhead
 * (request handling, decode) is unchanged by the datatype.
 */
inline constexpr double kInt8MacRateFactor = 0.5;

/** Suffix appended to a parent version name, e.g. "cnn-m-q8". */
inline constexpr const char *kQuantizedSuffix = "-q8";

/** The spec of a parent's quantized sibling. */
IcVersionSpec quantizedSpec(const IcVersionSpec &parent);

/**
 * Post-training-quantize one trained classifier. The first
 * `calib_count` images of `calibration` drive the static activation
 * calibration (see nn/quantized.hh).
 */
Classifier quantizeClassifier(Classifier &parent,
                              const dataset::ImageSet &calibration,
                              std::size_t calib_count = 32);

/** Quantize every member of a trained zoo, preserving order. */
std::vector<Classifier> quantizeZoo(
    std::vector<Classifier> &zoo,
    const dataset::ImageSet &calibration,
    std::size_t calib_count = 32);

} // namespace toltiers::ic

#endif // TOLTIERS_IC_QUANTIZE_HH
