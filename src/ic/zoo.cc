#include "ic/zoo.hh"

#include <memory>

#include "common/logging.hh"

namespace toltiers::ic {

using common::fatal;
using nn::Network;

std::vector<IcVersionSpec>
zooSpecs()
{
    // Training budgets scale modestly with capacity: bigger models
    // need a few more epochs to converge but all share the schedule
    // family. The default deployment is homogeneous CPU (the ladder
    // the headline figures use); bench/table_ic_versions also
    // reports the GPU alternative for the conv-heavy versions.
    auto sgd = [](std::size_t epochs, double lr) {
        nn::SgdConfig cfg;
        cfg.epochs = epochs;
        cfg.learningRate = lr;
        return cfg;
    };
    return {
        {"mlp-s", "squeezenet", "cpu-small", sgd(8, 0.08)},
        {"cnn-xs", "alexnet", "cpu-small", sgd(8, 0.05)},
        {"cnn-s", "googlenet", "cpu-small", sgd(8, 0.05)},
        {"cnn-m", "resnet", "cpu-small", sgd(10, 0.04)},
        {"cnn-l", "vgg", "cpu-small", sgd(10, 0.04)},
    };
}

Network
buildZooNetwork(const std::string &name, std::size_t image_size,
                std::size_t classes, common::Pcg32 &rng)
{
    using nn::Conv2d;
    using nn::Dense;
    using nn::Flatten;
    using nn::MaxPool2d;
    using nn::Relu;
    using tensor::ConvGeometry;

    const ConvGeometry k3{3, 1, 1};
    const std::size_t s = image_size;
    TT_ASSERT(s % 4 == 0, "zoo networks require image size % 4 == 0");
    const std::size_t s2 = s / 2, s4 = s / 4;

    Network net(name);
    if (name == "mlp-s") {
        net.add(std::make_unique<Flatten>())
            .add(std::make_unique<Dense>(s * s, 48, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<Dense>(48, classes, rng));
    } else if (name == "cnn-xs") {
        net.add(std::make_unique<Conv2d>(1, 6, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<MaxPool2d>(2, 2))
            .add(std::make_unique<Flatten>())
            .add(std::make_unique<Dense>(6 * s2 * s2, classes, rng));
    } else if (name == "cnn-s") {
        net.add(std::make_unique<Conv2d>(1, 8, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<MaxPool2d>(2, 2))
            .add(std::make_unique<Conv2d>(8, 16, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<MaxPool2d>(2, 2))
            .add(std::make_unique<Flatten>())
            .add(std::make_unique<Dense>(16 * s4 * s4, classes, rng));
    } else if (name == "cnn-m") {
        net.add(std::make_unique<Conv2d>(1, 12, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<Conv2d>(12, 24, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<MaxPool2d>(2, 2))
            .add(std::make_unique<Conv2d>(24, 32, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<MaxPool2d>(2, 2))
            .add(std::make_unique<Flatten>())
            .add(std::make_unique<Dense>(32 * s4 * s4, 64, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<Dense>(64, classes, rng));
    } else if (name == "cnn-l") {
        net.add(std::make_unique<Conv2d>(1, 16, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<Conv2d>(16, 32, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<MaxPool2d>(2, 2))
            .add(std::make_unique<Conv2d>(32, 48, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<Conv2d>(48, 48, k3, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<MaxPool2d>(2, 2))
            .add(std::make_unique<Flatten>())
            .add(std::make_unique<Dense>(48 * s4 * s4, 96, rng))
            .add(std::make_unique<Relu>())
            .add(std::make_unique<Dense>(96, classes, rng));
    } else {
        fatal("unknown zoo network: '", name, "'");
    }
    return net;
}

} // namespace toltiers::ic
