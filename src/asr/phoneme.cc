#include "asr/phoneme.hh"

#include <cmath>

#include "common/logging.hh"

namespace toltiers::asr {

using common::panic;

namespace {

// Consonant-vowel syllable symbols: enough for 21 * 5 = 105 phonemes.
const char *kConsonants = "kstnhmrgzbpdfvw";
const char *kVowels = "aeiou";

std::string
syllable(std::size_t id)
{
    std::size_t nc = 15, nv = 5;
    std::string s;
    s += kConsonants[id / nv % nc];
    s += kVowels[id % nv];
    if (id >= nc * nv) // wrap with a suffix for very large sets
        s += std::to_string(id / (nc * nv));
    return s;
}

double
distance(const std::vector<float> &a, const std::vector<float> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double x = a[i] - b[i];
        d += x * x;
    }
    return std::sqrt(d);
}

} // namespace

PhonemeSet::PhonemeSet(std::size_t count, common::Pcg32 &rng,
                       double separation)
{
    TT_ASSERT(count > 0, "phoneme set must not be empty");
    phonemes_.reserve(count);
    const int max_attempts = 10000;
    for (std::size_t id = 0; id < count; ++id) {
        Phoneme p;
        p.symbol = syllable(id);
        bool placed = false;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            std::vector<float> cand(kFeatureDim);
            for (float &x : cand)
                x = static_cast<float>(rng.gaussian(0.0, 1.5));
            bool ok = true;
            for (const auto &other : phonemes_) {
                if (distance(cand, other.prototype) < separation) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                p.prototype = std::move(cand);
                placed = true;
                break;
            }
        }
        if (!placed) {
            panic("could not place phoneme ", id,
                  " with separation ", separation,
                  "; reduce count or separation");
        }
        phonemes_.push_back(std::move(p));
    }
}

const Phoneme &
PhonemeSet::operator[](std::size_t id) const
{
    TT_ASSERT(id < phonemes_.size(), "phoneme id out of range");
    return phonemes_[id];
}

const std::string &
PhonemeSet::symbol(std::size_t id) const
{
    return (*this)[id].symbol;
}

const std::vector<float> &
PhonemeSet::prototype(std::size_t id) const
{
    return (*this)[id].prototype;
}

} // namespace toltiers::asr
