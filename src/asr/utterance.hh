/**
 * @file
 * An utterance: the reference transcript plus its rendered acoustic
 * frames and the synthesis metadata that determines its difficulty.
 */

#ifndef TOLTIERS_ASR_UTTERANCE_HH
#define TOLTIERS_ASR_UTTERANCE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "asr/acoustic_model.hh"

namespace toltiers::asr {

/** A synthesized speech sample with its ground truth. */
struct Utterance
{
    std::size_t id = 0;
    std::vector<int> refWords;      //!< Reference word ids.
    std::string refText;            //!< Space-separated word texts.
    std::vector<Frame> frames;      //!< Rendered acoustic frames.

    // Synthesis metadata (the "speaker and recording environment").
    double noiseSigma = 0.0;        //!< Acoustic noise level.
    std::size_t framesPerPhoneme = 3; //!< Speaking-rate proxy.

    /** Seconds of simulated audio at a 10 ms frame hop. */
    double
    audioSeconds() const
    {
        return static_cast<double>(frames.size()) * 0.010;
    }
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_UTTERANCE_HH
