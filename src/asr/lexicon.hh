/**
 * @file
 * Synthetic pronunciation lexicon and its prefix tree.
 *
 * Words are phoneme sequences; the decoder searches a prefix tree
 * (pronunciation trie) whose nodes are HMM emission states, exactly
 * as production lexicon-tree decoders do.
 */

#ifndef TOLTIERS_ASR_LEXICON_HH
#define TOLTIERS_ASR_LEXICON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asr/phoneme.hh"
#include "common/random.hh"

namespace toltiers::asr {

/** Sentinel for "no word ends here". */
constexpr int kNoWord = -1;

/** A vocabulary entry. */
struct Word
{
    int id = kNoWord;
    std::string text;                //!< Concatenated phoneme symbols.
    std::vector<std::size_t> phonemes;
};

/** One node of the pronunciation prefix tree. */
struct LexiconNode
{
    std::size_t phoneme = 0;  //!< Emission phoneme of this state.
    int wordId = kNoWord;     //!< Word completed at this node, if any.
    std::vector<std::uint32_t> children; //!< Indices into the node pool.
};

/**
 * Vocabulary plus pronunciation prefix tree. Generated synthetically:
 * each word is a 2..maxLen phoneme sequence, unique as a string.
 */
class Lexicon
{
  public:
    /**
     * Generate a vocabulary over the given phoneme set.
     * @param vocab_size number of distinct words.
     * @param max_len maximum phonemes per word (min is 2).
     */
    Lexicon(const PhonemeSet &phonemes, std::size_t vocab_size,
            common::Pcg32 &rng, std::size_t max_len = 4);

    std::size_t vocabSize() const { return words_.size(); }

    const Word &word(int id) const;

    /** Look up a word id by its text; kNoWord if absent. */
    int findWord(const std::string &text) const;

    /** Root children (first phonemes of all words). */
    const std::vector<std::uint32_t> &rootChildren() const
    {
        return rootChildren_;
    }

    /** Node pool accessor. */
    const LexiconNode &node(std::uint32_t idx) const;

    std::size_t nodeCount() const { return nodes_.size(); }

    /** Render a word-id sequence as space-separated text. */
    std::string text(const std::vector<int> &word_ids) const;

  private:
    /**
     * Child of `parent` (kRootParent for the tree root) with the
     * given phoneme, creating it if absent. Returns the node index.
     */
    static constexpr std::uint32_t kRootParent = 0xffffffffu;
    std::uint32_t addChild(std::uint32_t parent, std::size_t phoneme);

    std::vector<Word> words_;
    std::vector<LexiconNode> nodes_;
    std::vector<std::uint32_t> rootChildren_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_LEXICON_HH
