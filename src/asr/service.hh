/**
 * @file
 * serving::ServiceVersion adapter for an ASR engine version bound to
 * an utterance workload and an instance type.
 */

#ifndef TOLTIERS_ASR_SERVICE_HH
#define TOLTIERS_ASR_SERVICE_HH

#include <vector>

#include "asr/engine.hh"
#include "serving/instance.hh"
#include "serving/service_version.hh"

namespace toltiers::asr {

/** One deployed ASR service version. */
class AsrServiceVersion : public serving::ServiceVersion
{
  public:
    /**
     * All referents must outlive the adapter.
     * @param engine the engine version.
     * @param workload the bound utterance set.
     * @param instance the machine type the version is deployed on.
     */
    AsrServiceVersion(const AsrEngine &engine,
                      const std::vector<Utterance> &workload,
                      const serving::InstanceType &instance);

    const std::string &name() const override;
    const std::string &instanceName() const override;
    std::size_t workloadSize() const override;
    serving::VersionResult process(std::size_t index) const override;

  private:
    const AsrEngine &engine_;
    const std::vector<Utterance> &workload_;
    const serving::InstanceType &instance_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_SERVICE_HH
