/**
 * @file
 * Synthetic phoneme inventory.
 *
 * Each phoneme owns a prototype feature vector; the acoustic model
 * scores observed frames against these prototypes and the corpus
 * generator renders utterance frames from them (prototype + speaker
 * offset + noise). The inventory is generated deterministically from
 * a seed so every component sees the same acoustic space.
 */

#ifndef TOLTIERS_ASR_PHONEME_HH
#define TOLTIERS_ASR_PHONEME_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.hh"

namespace toltiers::asr {

/** Dimensionality of the synthetic acoustic feature space. */
constexpr std::size_t kFeatureDim = 8;

/** One synthetic phoneme: a symbol plus an acoustic prototype. */
struct Phoneme
{
    std::string symbol;                //!< e.g. "ka".
    std::vector<float> prototype;      //!< kFeatureDim-sized center.
};

/**
 * The phoneme inventory. Prototypes are drawn on a scaled hypersphere
 * with a minimum pairwise separation so that phonemes are acoustically
 * distinguishable at low noise but confusable at high noise — the
 * property the accuracy-latency trade-off rests on.
 */
class PhonemeSet
{
  public:
    /**
     * Generate an inventory of `count` phonemes.
     * @param separation minimum pairwise L2 distance between
     * prototypes; candidates violating it are rejection-sampled.
     */
    PhonemeSet(std::size_t count, common::Pcg32 &rng,
               double separation = 2.0);

    std::size_t size() const { return phonemes_.size(); }

    const Phoneme &operator[](std::size_t id) const;

    /** Symbol of phoneme id. */
    const std::string &symbol(std::size_t id) const;

    /** Prototype vector of phoneme id. */
    const std::vector<float> &prototype(std::size_t id) const;

  private:
    std::vector<Phoneme> phonemes_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_PHONEME_HH
