#include "asr/service.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace toltiers::asr {

AsrServiceVersion::AsrServiceVersion(
    const AsrEngine &engine, const std::vector<Utterance> &workload,
    const serving::InstanceType &instance)
    : engine_(engine), workload_(workload), instance_(instance)
{
}

const std::string &
AsrServiceVersion::name() const
{
    return engine_.name();
}

const std::string &
AsrServiceVersion::instanceName() const
{
    return instance_.name;
}

std::size_t
AsrServiceVersion::workloadSize() const
{
    return workload_.size();
}

serving::VersionResult
AsrServiceVersion::process(std::size_t index) const
{
    TT_ASSERT(index < workload_.size(), "utterance index out of range");
    const Utterance &utt = workload_[index];
    AsrResult r = engine_.transcribe(utt);

#if TOLTIERS_OBS_ENABLED
    if (obs::metricsEnabled()) {
        obs::Registry::global()
            .histogram("tt_inference_wall_seconds",
                       {{"service", "asr"},
                        {"version", engine_.name()}},
                       {},
                       "Measured per-invocation decode wall time")
            .observe(r.wallSeconds);
    }
#endif

    serving::VersionResult out;
    out.output = r.decode.text;
    out.confidence = r.confidence;
    out.latencySeconds = instance_.latency(r.latencySeconds);
    out.costDollars = instance_.invocationCost(r.latencySeconds);
    out.error = engine_.wer(r, utt);
    out.workUnits = r.decode.workUnits;
    return out;
}

} // namespace toltiers::asr
