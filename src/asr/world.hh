/**
 * @file
 * AsrWorld bundles the shared linguistic/acoustic assets — phoneme
 * inventory, lexicon, language model, acoustic model — generated
 * deterministically from one seed, so the corpus generator and every
 * engine version agree on the task.
 */

#ifndef TOLTIERS_ASR_WORLD_HH
#define TOLTIERS_ASR_WORLD_HH

#include <cstdint>
#include <memory>

#include "asr/acoustic_model.hh"
#include "asr/language_model.hh"
#include "asr/lexicon.hh"
#include "asr/phoneme.hh"
#include "common/random.hh"

namespace toltiers::asr {

/** Construction parameters for an AsrWorld. */
struct WorldConfig
{
    std::uint64_t seed = 42;
    std::size_t phonemeCount = 24;
    std::size_t vocabSize = 120;
    std::size_t maxWordLen = 4;
    std::size_t lmAffinity = 8;
    double lmLambda = 0.75;
    double acousticSigma = 1.0;
};

/** Immutable shared ASR task definition. */
class AsrWorld
{
  public:
    explicit AsrWorld(const WorldConfig &cfg = WorldConfig())
        : config_(cfg), rng_(cfg.seed),
          phonemes_(cfg.phonemeCount, rng_),
          lexicon_(phonemes_, cfg.vocabSize, rng_, cfg.maxWordLen),
          lm_(cfg.vocabSize, rng_, cfg.lmAffinity, cfg.lmLambda),
          am_(phonemes_, cfg.acousticSigma)
    {
    }

    AsrWorld(const AsrWorld &) = delete;
    AsrWorld &operator=(const AsrWorld &) = delete;

    const WorldConfig &config() const { return config_; }
    const PhonemeSet &phonemes() const { return phonemes_; }
    const Lexicon &lexicon() const { return lexicon_; }
    const BigramLm &lm() const { return lm_; }
    const AcousticModel &am() const { return am_; }

  private:
    WorldConfig config_;
    common::Pcg32 rng_;
    PhonemeSet phonemes_;
    Lexicon lexicon_;
    BigramLm lm_;
    AcousticModel am_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_WORLD_HH
