/**
 * @file
 * Acoustic front-end: waveform synthesis and feature extraction.
 *
 * The default corpus renders utterances directly in feature space;
 * this module provides the full DSP path a production engine has in
 * front of its acoustic model. Each feature dimension corresponds to
 * one spectral band (a DFT-aligned bin): synthesis emits a 10 ms
 * frame of samples as a sum of band sinusoids whose amplitudes
 * encode the feature vector, plus white noise; extraction recovers
 * the band amplitudes by single-bin DFT correlation (Goertzel) and
 * maps them back to features. With zero noise the round trip is
 * exact; waveform noise degrades features monotonically, giving the
 * same difficulty dial as direct synthesis.
 */

#ifndef TOLTIERS_ASR_FRONTEND_HH
#define TOLTIERS_ASR_FRONTEND_HH

#include <array>
#include <cstddef>
#include <vector>

#include "asr/acoustic_model.hh"
#include "common/random.hh"

namespace toltiers::asr {

/** Front-end configuration. */
struct FrontendConfig
{
    double sampleRate = 16000.0;
    std::size_t frameSamples = 160; //!< 10 ms at 16 kHz.

    /**
     * DFT bin per feature dimension. Bins are DFT-aligned (integer
     * cycles per frame) so the bands are orthogonal and recovery is
     * exact in the noiseless case.
     */
    std::array<std::size_t, kFeatureDim> bins = {5,  9,  13, 17,
                                                 21, 25, 29, 33};

    /** Band center frequency in Hz for feature dimension k. */
    double
    bandHz(std::size_t k) const
    {
        return static_cast<double>(bins[k]) * sampleRate /
               static_cast<double>(frameSamples);
    }
};

/** Waveform synthesis + feature extraction. */
class Frontend
{
  public:
    explicit Frontend(FrontendConfig cfg = FrontendConfig());

    /**
     * Render one frame of audio samples encoding the feature vector:
     * amplitude of band k is exp(features[k] / 2), each band gets an
     * independent random phase, and white Gaussian noise of the
     * given level is added per sample.
     */
    std::vector<float>
    synthesizeFrame(const Frame &features, double noise_sigma,
                    common::Pcg32 &rng) const;

    /**
     * Recover the feature vector from one frame of samples:
     * single-bin DFT magnitude per band, mapped back through
     * 2*log(amplitude). Amplitudes are floored to keep the log
     * finite under destructive noise.
     */
    Frame extractFeatures(const std::vector<float> &samples) const;

    const FrontendConfig &config() const { return cfg_; }

  private:
    FrontendConfig cfg_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_FRONTEND_HH
