#include "asr/engine.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "common/strings.hh"
#include "stats/levenshtein.hh"

namespace toltiers::asr {

double
ConfidenceCalibration::confidence(const DecodeResult &r) const
{
    double z = marginWeight * r.margin +
               scoreWeight * (r.scorePerFrame - scoreOffset) + bias;
    if (!r.aligned)
        z -= 4.0; // Unfinished alignments are deeply suspect.
    return 1.0 / (1.0 + std::exp(-z));
}

AsrEngine::AsrEngine(const AsrWorld &world, BeamConfig cfg,
                     double seconds_per_work_unit,
                     ConfidenceCalibration cal)
    : world_(world), decoder_(world), cfg_(std::move(cfg)),
      secondsPerWorkUnit_(seconds_per_work_unit), cal_(cal)
{
    TT_ASSERT(seconds_per_work_unit > 0.0,
              "latency model must be positive");
}

AsrResult
AsrEngine::transcribe(const Utterance &utt) const
{
    common::Stopwatch sw;
    AsrResult res;
    res.decode = decoder_.decode(utt, cfg_);
    res.wallSeconds = sw.seconds();
    res.latencySeconds =
        static_cast<double>(res.decode.workUnits) *
        secondsPerWorkUnit_;
    res.confidence = cal_.confidence(res.decode);
    return res;
}

double
AsrEngine::wer(const AsrResult &res, const Utterance &utt) const
{
    return stats::wordErrorRate(
        common::splitWhitespace(res.decode.text),
        common::splitWhitespace(utt.refText));
}

} // namespace toltiers::asr
