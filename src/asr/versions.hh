/**
 * @file
 * Canonical ASR service versions.
 *
 * The paper studies seven heuristic configurations lying on the
 * engine's accuracy-latency Pareto frontier, "the product of two
 * orthogonal concerns": the hypothesis pruning policy (top-N) and the
 * scope pruned (local / global / network). paretoVersions() returns
 * our seven; heuristicGrid() returns the full grid the frontier was
 * selected from (reproduced by bench/fig_pareto).
 */

#ifndef TOLTIERS_ASR_VERSIONS_HH
#define TOLTIERS_ASR_VERSIONS_HH

#include <vector>

#include "asr/decoder.hh"

namespace toltiers::asr {

/** The seven canonical service versions, fastest first. */
std::vector<BeamConfig> paretoVersions();

/**
 * The exhaustive heuristic grid (scope x top-N x beam width) that
 * the Pareto versions were chosen from.
 */
std::vector<BeamConfig> heuristicGrid();

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_VERSIONS_HH
