#include "asr/lexicon.hh"

#include <set>

#include "common/logging.hh"

namespace toltiers::asr {

using common::panic;

Lexicon::Lexicon(const PhonemeSet &phonemes, std::size_t vocab_size,
                 common::Pcg32 &rng, std::size_t max_len)
{
    TT_ASSERT(vocab_size > 0, "vocabulary must not be empty");
    TT_ASSERT(max_len >= 2, "words need at least two phonemes");

    std::set<std::string> seen;
    const int max_attempts = 200000;
    int attempts = 0;
    while (words_.size() < vocab_size) {
        if (++attempts > max_attempts) {
            panic("could not generate ", vocab_size,
                  " unique words; grow the phoneme set");
        }
        std::size_t len = static_cast<std::size_t>(
            rng.uniformInt(2, static_cast<int>(max_len)));
        Word w;
        w.phonemes.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            std::size_t ph = rng.nextBounded(
                static_cast<std::uint32_t>(phonemes.size()));
            w.phonemes.push_back(ph);
            w.text += phonemes.symbol(ph);
        }
        if (!seen.insert(w.text).second)
            continue;
        w.id = static_cast<int>(words_.size());
        words_.push_back(std::move(w));
    }

    // Build the prefix tree.
    for (const Word &w : words_) {
        std::uint32_t cur = kRootParent;
        for (std::size_t i = 0; i < w.phonemes.size(); ++i)
            cur = addChild(cur, w.phonemes[i]);
        TT_ASSERT(nodes_[cur].wordId == kNoWord,
                  "duplicate pronunciation in lexicon");
        nodes_[cur].wordId = w.id;
    }
}

std::uint32_t
Lexicon::addChild(std::uint32_t parent, std::size_t phoneme)
{
    const std::vector<std::uint32_t> &children =
        parent == kRootParent ? rootChildren_
                              : nodes_[parent].children;
    for (std::uint32_t c : children) {
        if (nodes_[c].phoneme == phoneme)
            return c;
    }
    LexiconNode n;
    n.phoneme = phoneme;
    nodes_.push_back(std::move(n));
    auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
    // Re-resolve after push_back: it may have reallocated nodes_.
    if (parent == kRootParent)
        rootChildren_.push_back(idx);
    else
        nodes_[parent].children.push_back(idx);
    return idx;
}

const Word &
Lexicon::word(int id) const
{
    TT_ASSERT(id >= 0 && static_cast<std::size_t>(id) < words_.size(),
              "word id out of range: ", id);
    return words_[static_cast<std::size_t>(id)];
}

int
Lexicon::findWord(const std::string &text) const
{
    for (const Word &w : words_) {
        if (w.text == text)
            return w.id;
    }
    return kNoWord;
}

const LexiconNode &
Lexicon::node(std::uint32_t idx) const
{
    TT_ASSERT(idx < nodes_.size(), "lexicon node out of range");
    return nodes_[idx];
}

std::string
Lexicon::text(const std::vector<int> &word_ids) const
{
    std::string out;
    for (std::size_t i = 0; i < word_ids.size(); ++i) {
        if (i > 0)
            out += ' ';
        out += word(word_ids[i]).text;
    }
    return out;
}

} // namespace toltiers::asr
