/**
 * @file
 * Gaussian acoustic model over the synthetic phoneme space.
 *
 * Scoring: per-frame log-likelihood of a phoneme is an isotropic
 * Gaussian around the phoneme prototype. Synthesis: the corpus
 * generator renders frames as prototype + speaker offset + noise,
 * so the model is exact at zero noise and increasingly confusable
 * as the noise level rises.
 */

#ifndef TOLTIERS_ASR_ACOUSTIC_MODEL_HH
#define TOLTIERS_ASR_ACOUSTIC_MODEL_HH

#include <vector>

#include "asr/phoneme.hh"
#include "common/random.hh"

namespace toltiers::asr {

/** One observed acoustic frame. */
using Frame = std::vector<float>;

/** Isotropic-Gaussian acoustic scorer and frame synthesizer. */
class AcousticModel
{
  public:
    /**
     * @param phonemes the shared inventory (must outlive the model).
     * @param sigma model standard deviation used for scoring.
     */
    explicit AcousticModel(const PhonemeSet &phonemes,
                           double sigma = 1.0);

    /** Log-likelihood (up to an additive constant) of the frame. */
    double logLikelihood(const Frame &frame, std::size_t phoneme) const;

    /**
     * Render one frame of the phoneme: prototype + speaker_offset +
     * N(0, noise_sigma) per dimension.
     */
    Frame synthesize(std::size_t phoneme,
                     const std::vector<float> &speaker_offset,
                     double noise_sigma, common::Pcg32 &rng) const;

    const PhonemeSet &phonemes() const { return phonemes_; }

    double sigma() const { return sigma_; }

  private:
    const PhonemeSet &phonemes_;
    double sigma_;
    double invTwoSigmaSq_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_ACOUSTIC_MODEL_HH
