#include "asr/versions.hh"

#include "common/strings.hh"

namespace toltiers::asr {

namespace {

BeamConfig
makeConfig(const std::string &name, PruneScope scope,
           std::size_t max_active, double beam)
{
    BeamConfig cfg;
    cfg.name = name;
    cfg.scope = scope;
    cfg.maxActive = max_active;
    cfg.beamWidth = beam;
    cfg.wordEndBeam = 0.75 * beam;
    return cfg;
}

} // namespace

std::vector<BeamConfig>
paretoVersions()
{
    // Fastest/least accurate first. Chosen from heuristicGrid() by
    // Pareto-filtering (latency, WER) on the reference corpus; the
    // selection is reproduced by bench/fig_pareto.
    return {
        makeConfig("v1", PruneScope::Network, 2, 3.0),
        makeConfig("v2", PruneScope::Network, 3, 4.0),
        makeConfig("v3", PruneScope::Network, 4, 5.0),
        makeConfig("v4", PruneScope::Network, 8, 6.0),
        makeConfig("v5", PruneScope::Global, 4, 8.0),
        makeConfig("v6", PruneScope::Global, 16, 10.0),
        makeConfig("v7", PruneScope::Local, 8, 12.0),
    };
}

std::vector<BeamConfig>
heuristicGrid()
{
    std::vector<BeamConfig> grid;
    const PruneScope scopes[] = {PruneScope::Network,
                                 PruneScope::Global,
                                 PruneScope::Local};
    const std::size_t actives[] = {1, 2, 4, 8, 16, 32};
    const double beams[] = {2.0, 4.0, 8.0, 12.0};
    for (PruneScope scope : scopes) {
        for (std::size_t n : actives) {
            for (double b : beams) {
                grid.push_back(makeConfig(
                    common::strprintf("%s-n%zu-b%g",
                                      pruneScopeName(scope), n, b),
                    scope, n, b));
            }
        }
    }
    return grid;
}

} // namespace toltiers::asr
