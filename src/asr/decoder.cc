#include "asr/decoder.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.hh"

namespace toltiers::asr {

using common::panic;

const char *
pruneScopeName(PruneScope scope)
{
    switch (scope) {
      case PruneScope::Local:
        return "local";
      case PruneScope::Global:
        return "global";
      case PruneScope::Network:
        return "network";
    }
    return "unknown";
}

namespace {

/** A live decoding token. */
struct Hyp
{
    std::uint32_t node = 0;
    int lastWord = kSentenceStart;
    double score = 0.0;
    std::vector<int> words;
};

/** Recombination key: (tree node, bigram LM context). */
std::uint64_t
recombKey(std::uint32_t node, int last_word)
{
    return (static_cast<std::uint64_t>(node) << 32) |
           static_cast<std::uint32_t>(last_word + 1);
}

/** Per-frame acoustic likelihood cache with work accounting. */
class AmScorer
{
  public:
    AmScorer(const AcousticModel &am, std::size_t phoneme_count)
        : am_(am), cache_(phoneme_count)
    {
    }

    void
    newFrame(const Frame &frame)
    {
        frame_ = &frame;
        std::fill(cache_.begin(), cache_.end(),
                  std::numeric_limits<double>::quiet_NaN());
    }

    double
    score(std::size_t phoneme, std::uint64_t &work)
    {
        // Every request counts as work even on a cache hit: the work
        // metric models an uncached production engine where the
        // acoustic evaluation dominates per-expansion cost.
        ++work;
        double &slot = cache_[phoneme];
        if (std::isnan(slot))
            slot = am_.logLikelihood(*frame_, phoneme);
        return slot;
    }

  private:
    const AcousticModel &am_;
    const Frame *frame_ = nullptr;
    std::vector<double> cache_;
};

/** Group hypotheses and keep the top N per group by score. */
template <typename KeyFn>
std::vector<Hyp>
topNPerGroup(std::vector<Hyp> &hyps, std::size_t n, KeyFn key_of)
{
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < hyps.size(); ++i)
        groups[key_of(hyps[i])].push_back(i);

    std::vector<Hyp> out;
    out.reserve(hyps.size());
    for (auto &[key, members] : groups) {
        (void)key;
        if (members.size() > n) {
            std::partial_sort(
                members.begin(), members.begin() + n, members.end(),
                [&](std::size_t a, std::size_t b) {
                    return hyps[a].score > hyps[b].score;
                });
            members.resize(n);
        }
        for (std::size_t i : members)
            out.push_back(std::move(hyps[i]));
    }
    return out;
}

} // namespace

Decoder::Decoder(const AsrWorld &world) : world_(world) {}

DecodeResult
Decoder::decode(const Utterance &utt, const BeamConfig &cfg) const
{
    DecodeResult res;
    res.frames = utt.frames.size();
    if (utt.frames.empty()) {
        res.aligned = false;
        return res;
    }
    TT_ASSERT(cfg.maxActive > 0, "maxActive must be positive");

    const Lexicon &lex = world_.lexicon();
    const BigramLm &lm = world_.lm();
    AmScorer scorer(world_.am(), world_.phonemes().size());

    // Branch id (root-child subtree) per node, for Global scoping.
    std::vector<std::uint32_t> branch(lex.nodeCount(), 0);
    {
        std::vector<std::uint32_t> stack;
        for (std::uint32_t root_child : lex.rootChildren()) {
            branch[root_child] = root_child;
            stack.push_back(root_child);
            while (!stack.empty()) {
                std::uint32_t cur = stack.back();
                stack.pop_back();
                for (std::uint32_t c : lex.node(cur).children) {
                    branch[c] = root_child;
                    stack.push_back(c);
                }
            }
        }
    }

    std::uint64_t work = 0;

    // --- Initialization: enter every first phoneme on frame 0.
    scorer.newFrame(utt.frames[0]);
    std::vector<Hyp> frontier;
    frontier.reserve(lex.rootChildren().size());
    for (std::uint32_t rc : lex.rootChildren()) {
        Hyp h;
        h.node = rc;
        h.lastWord = kSentenceStart;
        h.score = scorer.score(lex.node(rc).phoneme, work);
        frontier.push_back(std::move(h));
    }

    auto prune = [&](std::vector<Hyp> &hyps) {
        if (hyps.empty())
            return;
        double best = hyps[0].score;
        for (const Hyp &h : hyps)
            best = std::max(best, h.score);
        // Beam pruning relative to the frame-best score.
        std::vector<Hyp> kept;
        kept.reserve(hyps.size());
        for (Hyp &h : hyps) {
            if (h.score >= best - cfg.beamWidth)
                kept.push_back(std::move(h));
        }
        // Top-N pruning at the configured scope.
        switch (cfg.scope) {
          case PruneScope::Local:
            kept = topNPerGroup(kept, cfg.maxActive,
                                [](const Hyp &h) {
                                    return static_cast<std::uint64_t>(
                                        h.node);
                                });
            break;
          case PruneScope::Global:
            kept = topNPerGroup(kept, cfg.maxActive,
                                [&](const Hyp &h) {
                                    return static_cast<std::uint64_t>(
                                        branch[h.node]);
                                });
            break;
          case PruneScope::Network:
            kept = topNPerGroup(kept, cfg.maxActive,
                                [](const Hyp &) {
                                    return std::uint64_t{0};
                                });
            break;
        }
        hyps = std::move(kept);
    };
    prune(frontier);

    // --- Frame loop.
    for (std::size_t t = 1; t < utt.frames.size(); ++t) {
        scorer.newFrame(utt.frames[t]);

        double frontier_best = frontier.empty() ? 0.0
                                                : frontier[0].score;
        for (const Hyp &h : frontier)
            frontier_best = std::max(frontier_best, h.score);

        std::vector<Hyp> cands;
        cands.reserve(frontier.size() * 3);
        std::unordered_map<std::uint64_t, std::size_t> recomb;
        recomb.reserve(frontier.size() * 3);

        auto emit = [&](Hyp &&h) {
            std::uint64_t key = recombKey(h.node, h.lastWord);
            auto [it, inserted] = recomb.try_emplace(key, cands.size());
            if (inserted) {
                cands.push_back(std::move(h));
            } else if (h.score > cands[it->second].score) {
                cands[it->second] = std::move(h);
            }
        };

        for (const Hyp &h : frontier) {
            const LexiconNode &node = lex.node(h.node);

            // Self-loop: stay in the same phoneme state.
            {
                Hyp n = h;
                n.score += scorer.score(node.phoneme, work);
                emit(std::move(n));
            }

            // Advance within the word.
            for (std::uint32_t c : node.children) {
                Hyp n = h;
                n.node = c;
                n.score += scorer.score(lex.node(c).phoneme, work);
                emit(std::move(n));
            }

            // Cross-word transition at word-end nodes.
            if (node.wordId != kNoWord &&
                h.score >= frontier_best - cfg.wordEndBeam) {
                ++work; // LM query.
                double base =
                    h.score +
                    cfg.lmScale * lm.logProb(h.lastWord, node.wordId) -
                    cfg.wordInsertionPenalty;
                for (std::uint32_t rc : lex.rootChildren()) {
                    Hyp n;
                    n.node = rc;
                    n.lastWord = node.wordId;
                    n.words = h.words;
                    n.words.push_back(node.wordId);
                    n.score = base +
                              scorer.score(lex.node(rc).phoneme, work);
                    emit(std::move(n));
                }
            }
        }

        prune(cands);
        frontier = std::move(cands);
        if (frontier.empty())
            break; // All paths pruned; degenerate config.
    }

    // --- Finalization: complete the word in flight.
    struct Final
    {
        double score;
        std::vector<int> words;
    };
    std::vector<Final> finals;
    finals.reserve(frontier.size());
    for (const Hyp &h : frontier) {
        const LexiconNode &node = lex.node(h.node);
        if (node.wordId == kNoWord)
            continue;
        ++work; // LM query.
        Final f;
        f.score = h.score +
                  cfg.lmScale * lm.logProb(h.lastWord, node.wordId) -
                  cfg.wordInsertionPenalty;
        f.words = h.words;
        f.words.push_back(node.wordId);
        finals.push_back(std::move(f));
    }

    res.workUnits = work;

    if (finals.empty()) {
        // No hypothesis ended on a word boundary (over-aggressive
        // pruning or severe noise). Fall back to the best partial.
        res.aligned = false;
        const Hyp *best = nullptr;
        for (const Hyp &h : frontier) {
            if (!best || h.score > best->score)
                best = &h;
        }
        if (best) {
            res.words = best->words;
            res.score = best->score;
        }
        res.text = lex.text(res.words);
        res.scorePerFrame =
            res.score / static_cast<double>(res.frames);
        res.margin = 0.0;
        return res;
    }

    std::sort(finals.begin(), finals.end(),
              [](const Final &a, const Final &b) {
                  return a.score > b.score;
              });
    const Final &best = finals[0];
    res.words = best.words;
    res.text = lex.text(res.words);
    res.score = best.score;
    res.scorePerFrame = res.score / static_cast<double>(res.frames);

    // Margin against the best final with a different transcript.
    res.margin = 1.0; // No distinct rival survived: fully confident.
    for (std::size_t i = 1; i < finals.size(); ++i) {
        if (finals[i].words != best.words) {
            res.margin = (best.score - finals[i].score) /
                         static_cast<double>(res.frames);
            break;
        }
    }

    // N-best list: distinct transcripts in score order.
    std::size_t want = std::max<std::size_t>(cfg.nbestSize, 1);
    for (const Final &f : finals) {
        if (res.nbest.size() >= want)
            break;
        bool dup = false;
        for (const NBestEntry &e : res.nbest)
            dup |= e.words == f.words;
        if (dup)
            continue;
        NBestEntry entry;
        entry.words = f.words;
        entry.text = lex.text(f.words);
        entry.score = f.score;
        res.nbest.push_back(std::move(entry));
    }
    return res;
}

double
Decoder::forcedAlignmentScore(const Utterance &utt,
                              const std::vector<int> &words,
                              const BeamConfig &cfg) const
{
    const double kNegInf = -std::numeric_limits<double>::infinity();
    if (utt.frames.empty() || words.empty())
        return kNegInf;

    const Lexicon &lex = world_.lexicon();
    const BigramLm &lm = world_.lm();
    const AcousticModel &am = world_.am();

    // Flatten the word sequence into the state chain the decoder
    // traverses: one emitting state per phoneme; LM score plus
    // insertion penalty applied at each word boundary (i.e. when
    // *entering* a word, matching decode()'s cross-word transition
    // which scores the completed word before re-entering the tree).
    // decode() applies the LM when a word completes, so the total
    // path score is identical either way.
    struct State
    {
        std::size_t phoneme;
        double entryBonus; //!< LM + penalty applied on entry.
    };
    std::vector<State> chain;
    int prev = kSentenceStart;
    for (int w : words) {
        const Word &word = lex.word(w);
        double bonus = cfg.lmScale * lm.logProb(prev, w) -
                       cfg.wordInsertionPenalty;
        for (std::size_t i = 0; i < word.phonemes.size(); ++i) {
            chain.push_back(
                {word.phonemes[i], i == 0 ? bonus : 0.0});
        }
        prev = w;
    }
    const std::size_t frames = utt.frames.size();
    const std::size_t states = chain.size();
    if (states > frames)
        return kNegInf;

    // Viterbi over (frame, state) with self-loop or advance-by-one.
    std::vector<double> cur(states, kNegInf), next(states, kNegInf);
    cur[0] = chain[0].entryBonus +
             am.logLikelihood(utt.frames[0], chain[0].phoneme);
    for (std::size_t t = 1; t < frames; ++t) {
        std::fill(next.begin(), next.end(), kNegInf);
        for (std::size_t s = 0; s < states; ++s) {
            if (cur[s] == kNegInf)
                continue;
            // Self-loop.
            double stay =
                cur[s] +
                am.logLikelihood(utt.frames[t], chain[s].phoneme);
            next[s] = std::max(next[s], stay);
            // Advance.
            if (s + 1 < states) {
                double adv =
                    cur[s] + chain[s + 1].entryBonus +
                    am.logLikelihood(utt.frames[t],
                                     chain[s + 1].phoneme);
                next[s + 1] = std::max(next[s + 1], adv);
            }
        }
        std::swap(cur, next);
    }
    return cur[states - 1];
}

} // namespace toltiers::asr
