/**
 * @file
 * Time-synchronous lexicon-tree beam-search decoder.
 *
 * The decoder performs Viterbi token passing over the pronunciation
 * prefix tree: each tree node is a phoneme HMM state with a self-loop;
 * word-end nodes apply the bigram LM and re-enter the tree root. The
 * heuristic knobs mirror the two orthogonal concerns the paper
 * describes: the hypothesis pruning policy (top-N plus beams) and the
 * scope the pruning is applied at — a single hypothesis state
 * (local), a branch of hypotheses (global), or the entire HMM network.
 *
 * Work accounting: every acoustic-likelihood evaluation and LM query
 * requested during the search counts one work unit, whether or not it
 * hits the per-frame likelihood cache. Work units are deterministic
 * for a given (config, utterance) pair and serve as the
 * machine-independent latency proxy (see DESIGN.md).
 */

#ifndef TOLTIERS_ASR_DECODER_HH
#define TOLTIERS_ASR_DECODER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asr/utterance.hh"
#include "asr/world.hh"

namespace toltiers::asr {

/**
 * Scope at which top-N hypothesis pruning is applied, following the
 * paper's taxonomy:
 *  - Local: top-N kept per hypothesis state (tree node). The widest
 *    search for a given N — many states stay alive — and the slowest.
 *  - Global: top-N kept per branch of the pronunciation tree (the
 *    subtree of the current word's first phoneme).
 *  - Network: top-N kept across the entire HMM network frontier
 *    (classic histogram pruning). The most aggressive and fastest.
 *
 * Hypothesis recombination is always exact Viterbi merging per
 * (node, LM context); the scope only controls pruning granularity.
 */
enum class PruneScope { Local, Global, Network };

/** Printable name of a scope. */
const char *pruneScopeName(PruneScope scope);

/** Beam-search heuristic parameters (one "service version"). */
struct BeamConfig
{
    std::string name = "default";
    std::size_t maxActive = 16;   //!< Top-N kept per pruning scope unit.
    double beamWidth = 8.0;       //!< Log-prob beam below the best.
    double wordEndBeam = 6.0;     //!< Tighter beam at word boundaries.
    PruneScope scope = PruneScope::Network;
    double lmScale = 1.0;         //!< LM weight.
    double wordInsertionPenalty = 0.5;
    std::size_t nbestSize = 1;    //!< Distinct alternatives returned.
};

/** One N-best list entry. */
struct NBestEntry
{
    std::vector<int> words;
    std::string text;
    double score = 0.0;
};

/** Result of decoding one utterance. */
struct DecodeResult
{
    std::vector<int> words;   //!< Hypothesized word ids.
    std::string text;         //!< Space-separated word texts.
    double score = 0.0;       //!< Log probability of the best path.
    double scorePerFrame = 0.0;
    double margin = 0.0;      //!< Best minus runner-up, per frame.
    std::uint64_t workUnits = 0;
    std::size_t frames = 0;
    bool aligned = true;      //!< False if no word-end hyp survived.

    /**
     * Up to nbestSize distinct surviving transcripts, best first
     * (the best entry duplicates words/score above). Alternatives
     * are limited to what the beam kept alive; narrow configurations
     * may return fewer.
     */
    std::vector<NBestEntry> nbest;
};

/** Lexicon-tree Viterbi beam-search decoder. */
class Decoder
{
  public:
    /** @param world shared task assets; must outlive the decoder. */
    explicit Decoder(const AsrWorld &world);

    /** Decode one utterance under the given heuristics. */
    DecodeResult decode(const Utterance &utt,
                        const BeamConfig &cfg) const;

    /**
     * Forced alignment: the exact Viterbi score of a *given* word
     * sequence against the utterance (same HMM topology, LM scale,
     * and insertion penalty as decode(), but no search). Because the
     * beam search explores a superset of this single path, a
     * sufficiently wide decode() must score at least this value —
     * the decoder's optimality check. Returns -infinity if the word
     * sequence cannot be aligned (more phonemes than frames).
     */
    double forcedAlignmentScore(const Utterance &utt,
                                const std::vector<int> &words,
                                const BeamConfig &cfg) const;

  private:
    const AsrWorld &world_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_DECODER_HH
