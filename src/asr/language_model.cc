#include "asr/language_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace toltiers::asr {

using common::panic;

BigramLm::BigramLm(std::size_t vocab_size, common::Pcg32 &rng,
                   std::size_t affinity, double lambda)
    : vocab_(vocab_size)
{
    TT_ASSERT(vocab_size > 1, "bigram LM needs at least two words");
    TT_ASSERT(lambda >= 0.0 && lambda <= 1.0, "lambda in [0,1]");

    // Zipf-like unigram: weight 1/(rank+1)^s over a shuffled ranking.
    std::vector<std::size_t> rank(vocab_);
    for (std::size_t i = 0; i < vocab_; ++i)
        rank[i] = i;
    rng.shuffle(rank);
    unigram_.assign(vocab_, 0.0);
    double total = 0.0;
    const double s = 1.1;
    for (std::size_t i = 0; i < vocab_; ++i) {
        double w = 1.0 / std::pow(static_cast<double>(rank[i]) + 1.0, s);
        unigram_[i] = w;
        total += w;
    }
    for (double &w : unigram_)
        w /= total;

    // Sparse bigram affinities interpolated with the unigram.
    auto make_row = [&](std::vector<double> &row) {
        row.assign(vocab_, 0.0);
        std::vector<double> boost(vocab_, 0.0);
        double boost_total = 0.0;
        for (std::size_t a = 0; a < affinity; ++a) {
            std::size_t w =
                rng.nextBounded(static_cast<std::uint32_t>(vocab_));
            double v = rng.uniform(0.5, 2.0);
            boost[w] += v;
            boost_total += v;
        }
        for (std::size_t w = 0; w < vocab_; ++w) {
            double big =
                boost_total > 0.0 ? boost[w] / boost_total : 0.0;
            row[w] = lambda * big + (1.0 - lambda) * unigram_[w];
        }
    };

    bigram_.resize(vocab_);
    for (std::size_t p = 0; p < vocab_; ++p)
        make_row(bigram_[p]);
    make_row(start_);
}

const std::vector<double> &
BigramLm::distribution(int prev) const
{
    if (prev == kSentenceStart)
        return start_;
    TT_ASSERT(prev >= 0 && static_cast<std::size_t>(prev) < vocab_,
              "LM context out of range: ", prev);
    return bigram_[static_cast<std::size_t>(prev)];
}

double
BigramLm::prob(int prev, int next) const
{
    TT_ASSERT(next >= 0 && static_cast<std::size_t>(next) < vocab_,
              "LM word out of range: ", next);
    return distribution(prev)[static_cast<std::size_t>(next)];
}

double
BigramLm::logProb(int prev, int next) const
{
    return std::log(std::max(prob(prev, next), 1e-300));
}

int
BigramLm::sampleNext(int prev, common::Pcg32 &rng) const
{
    return static_cast<int>(rng.discrete(distribution(prev)));
}

std::vector<int>
BigramLm::sampleSentence(std::size_t length, common::Pcg32 &rng) const
{
    std::vector<int> out;
    out.reserve(length);
    int prev = kSentenceStart;
    for (std::size_t i = 0; i < length; ++i) {
        int w = sampleNext(prev, rng);
        out.push_back(w);
        prev = w;
    }
    return out;
}

double
BigramLm::sequenceLogProb(const std::vector<int> &words) const
{
    double lp = 0.0;
    int prev = kSentenceStart;
    for (int w : words) {
        lp += logProb(prev, w);
        prev = w;
    }
    return lp;
}

double
BigramLm::perplexity(
    const std::vector<std::vector<int>> &sentences) const
{
    double lp = 0.0;
    std::size_t words = 0;
    for (const auto &s : sentences) {
        lp += sequenceLogProb(s);
        words += s.size();
    }
    if (words == 0)
        return 1.0;
    return std::exp(-lp / static_cast<double>(words));
}

} // namespace toltiers::asr
