#include "asr/frontend.hh"

#include <cmath>

#include "common/logging.hh"

namespace toltiers::asr {

Frontend::Frontend(FrontendConfig cfg) : cfg_(cfg)
{
    TT_ASSERT(cfg_.frameSamples > 0, "frame must have samples");
    for (std::size_t bin : cfg_.bins) {
        TT_ASSERT(bin > 0 && bin < cfg_.frameSamples / 2,
                  "band bin out of the representable range");
    }
}

std::vector<float>
Frontend::synthesizeFrame(const Frame &features, double noise_sigma,
                          common::Pcg32 &rng) const
{
    TT_ASSERT(features.size() == kFeatureDim,
              "feature dimensionality mismatch");
    const std::size_t n = cfg_.frameSamples;
    std::vector<float> samples(n, 0.0f);

    for (std::size_t k = 0; k < kFeatureDim; ++k) {
        double amp = std::exp(0.5 * features[k]);
        double omega = 2.0 * M_PI *
                       static_cast<double>(cfg_.bins[k]) /
                       static_cast<double>(n);
        double phase = rng.uniform(0.0, 2.0 * M_PI);
        for (std::size_t t = 0; t < n; ++t) {
            samples[t] += static_cast<float>(
                amp * std::sin(omega * static_cast<double>(t) +
                               phase));
        }
    }
    if (noise_sigma > 0.0) {
        for (float &s : samples)
            s += static_cast<float>(rng.gaussian(0.0, noise_sigma));
    }
    return samples;
}

Frame
Frontend::extractFeatures(const std::vector<float> &samples) const
{
    TT_ASSERT(samples.size() == cfg_.frameSamples,
              "sample count mismatch: ", samples.size());
    const std::size_t n = cfg_.frameSamples;
    Frame features(kFeatureDim);

    for (std::size_t k = 0; k < kFeatureDim; ++k) {
        double omega = 2.0 * M_PI *
                       static_cast<double>(cfg_.bins[k]) /
                       static_cast<double>(n);
        double re = 0.0, im = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            double angle = omega * static_cast<double>(t);
            re += samples[t] * std::cos(angle);
            im += samples[t] * std::sin(angle);
        }
        // A sinusoid of amplitude A at a DFT-aligned bin correlates
        // to magnitude A*n/2.
        double amp = 2.0 * std::hypot(re, im) /
                     static_cast<double>(n);
        amp = std::max(amp, 1e-6); // Log floor under heavy noise.
        features[k] = static_cast<float>(2.0 * std::log(amp));
    }
    return features;
}

} // namespace toltiers::asr
