/**
 * @file
 * The ASR engine facade: one decoder heuristic configuration bound to
 * a latency model and a confidence calibration — i.e. one deployable
 * "service version" of the speech service.
 */

#ifndef TOLTIERS_ASR_ENGINE_HH
#define TOLTIERS_ASR_ENGINE_HH

#include <string>

#include "asr/decoder.hh"

namespace toltiers::asr {

/** Maps decoder search quality signals to a confidence in (0, 1). */
struct ConfidenceCalibration
{
    double marginWeight = 3.0;   //!< Weight on the per-frame margin.
    double scoreWeight = 0.8;    //!< Weight on the per-frame score.
    double scoreOffset = -2.0;   //!< Score level mapped to neutral.
    double bias = 0.0;

    /** Logistic map of the decode-quality signals. */
    double confidence(const DecodeResult &r) const;
};

/** One transcription produced by a service version. */
struct AsrResult
{
    DecodeResult decode;
    double latencySeconds = 0.0; //!< Work-unit derived latency.
    double wallSeconds = 0.0;    //!< Measured wall-clock time.
    double confidence = 0.0;     //!< Calibrated confidence in (0, 1).
};

/**
 * A deployable ASR service version: decoder heuristics + latency
 * model + confidence calibration.
 */
class AsrEngine
{
  public:
    /**
     * @param world shared task assets (must outlive the engine).
     * @param cfg beam-search heuristics of this version.
     * @param seconds_per_work_unit latency model: the per-expansion
     * cost of the production engine this substrate stands in for.
     */
    AsrEngine(const AsrWorld &world, BeamConfig cfg,
              double seconds_per_work_unit = 10e-6,
              ConfidenceCalibration cal = ConfidenceCalibration());

    /** Transcribe one utterance. */
    AsrResult transcribe(const Utterance &utt) const;

    /** WER of a result against the utterance's reference. */
    double wer(const AsrResult &res, const Utterance &utt) const;

    const BeamConfig &config() const { return cfg_; }
    const std::string &name() const { return cfg_.name; }
    const AsrWorld &world() const { return world_; }
    double secondsPerWorkUnit() const { return secondsPerWorkUnit_; }

  private:
    const AsrWorld &world_;
    Decoder decoder_;
    BeamConfig cfg_;
    double secondsPerWorkUnit_;
    ConfidenceCalibration cal_;
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_ENGINE_HH
