#include "asr/acoustic_model.hh"

#include "common/logging.hh"

namespace toltiers::asr {

AcousticModel::AcousticModel(const PhonemeSet &phonemes, double sigma)
    : phonemes_(phonemes), sigma_(sigma),
      invTwoSigmaSq_(1.0 / (2.0 * sigma * sigma))
{
    TT_ASSERT(sigma > 0.0, "acoustic sigma must be positive");
}

double
AcousticModel::logLikelihood(const Frame &frame,
                             std::size_t phoneme) const
{
    const std::vector<float> &proto = phonemes_.prototype(phoneme);
    TT_ASSERT(frame.size() == proto.size(),
              "frame dimensionality mismatch");
    double d2 = 0.0;
    for (std::size_t i = 0; i < frame.size(); ++i) {
        double d = static_cast<double>(frame[i]) - proto[i];
        d2 += d * d;
    }
    return -d2 * invTwoSigmaSq_;
}

Frame
AcousticModel::synthesize(std::size_t phoneme,
                          const std::vector<float> &speaker_offset,
                          double noise_sigma, common::Pcg32 &rng) const
{
    const std::vector<float> &proto = phonemes_.prototype(phoneme);
    TT_ASSERT(speaker_offset.size() == proto.size(),
              "speaker offset dimensionality mismatch");
    Frame f(proto.size());
    for (std::size_t i = 0; i < proto.size(); ++i) {
        f[i] = proto[i] + speaker_offset[i] +
               static_cast<float>(rng.gaussian(0.0, noise_sigma));
    }
    return f;
}

} // namespace toltiers::asr
