/**
 * @file
 * Synthetic bigram language model with interpolation smoothing.
 *
 * The model is generated from a Zipf-like unigram prior plus sparse
 * bigram affinities, so some word sequences are likely and some are
 * rare — giving the decoder's LM-dependent pruning real work to do.
 */

#ifndef TOLTIERS_ASR_LANGUAGE_MODEL_HH
#define TOLTIERS_ASR_LANGUAGE_MODEL_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"

namespace toltiers::asr {

/** Sentence-start context for bigram queries. */
constexpr int kSentenceStart = -1;

/**
 * Bigram LM over an integer vocabulary: p(next | prev) interpolated
 * between a dense unigram and sparse bigram affinities.
 */
class BigramLm
{
  public:
    /**
     * Generate a model.
     * @param vocab_size vocabulary size.
     * @param affinity number of boosted successor words per context.
     * @param lambda interpolation weight on the bigram component.
     */
    BigramLm(std::size_t vocab_size, common::Pcg32 &rng,
             std::size_t affinity = 8, double lambda = 0.75);

    std::size_t vocabSize() const { return vocab_; }

    /** log p(next | prev); prev may be kSentenceStart. */
    double logProb(int prev, int next) const;

    /** p(next | prev) as a probability. */
    double prob(int prev, int next) const;

    /** Sample a successor of prev. */
    int sampleNext(int prev, common::Pcg32 &rng) const;

    /**
     * Sample a sentence of the given length (no explicit end token;
     * the corpus generator controls length).
     */
    std::vector<int> sampleSentence(std::size_t length,
                                    common::Pcg32 &rng) const;

    /** Total log probability of a word sequence. */
    double sequenceLogProb(const std::vector<int> &words) const;

    /**
     * Corpus perplexity: exp(-sum logP / word count) over the given
     * sentences. Lower is a better model of the corpus.
     */
    double
    perplexity(const std::vector<std::vector<int>> &sentences) const;

  private:
    const std::vector<double> &distribution(int prev) const;

    std::size_t vocab_;
    std::vector<double> unigram_;              //!< p(w), sums to 1.
    std::vector<std::vector<double>> bigram_;  //!< p(w | prev), rows sum to 1.
    std::vector<double> start_;                //!< p(w | <s>).
};

} // namespace toltiers::asr

#endif // TOLTIERS_ASR_LANGUAGE_MODEL_HH
