/**
 * @file
 * Synthetic speech corpus generator (the VoxForge stand-in).
 *
 * Utterances are word sequences sampled from the task's bigram LM and
 * rendered to acoustic frames via the acoustic model. Per-utterance
 * speaker offsets, speaking rates, and a noise mixture reproduce the
 * difficulty spread the paper's per-request analysis depends on: most
 * utterances are easy enough that every service version transcribes
 * them identically, while a noisy tail separates the versions.
 */

#ifndef TOLTIERS_DATASET_SPEECH_CORPUS_HH
#define TOLTIERS_DATASET_SPEECH_CORPUS_HH

#include <cstdint>
#include <vector>

#include "asr/frontend.hh"
#include "asr/utterance.hh"
#include "asr/world.hh"

namespace toltiers::dataset {

/** Corpus synthesis parameters. */
struct SpeechCorpusConfig
{
    std::uint64_t seed = 1234;
    std::size_t utterances = 1500;
    std::size_t minWords = 3;
    std::size_t maxWords = 8;
    std::size_t minFramesPerPhoneme = 2;
    std::size_t maxFramesPerPhoneme = 4;

    // Recording-condition mixture (fractions must sum to <= 1;
    // the remainder is the hard fraction).
    double easyFraction = 0.75;
    double mediumFraction = 0.15;
    double easySigma = 0.50;
    double mediumSigma = 1.00;
    double hardSigma = 1.40;
    double sigmaJitter = 0.10;      //!< Uniform jitter on the sigma.
    double speakerOffsetSigma = 0.15;

    /**
     * Per-word probability that the speaker utters a different word
     * than the reference transcript records (mispronunciations,
     * disfluencies, transcription noise). These words are decoded
     * "correctly" by every version and scored wrong against the
     * reference by every version alike — the shared, version-
     * insensitive error floor real corpora exhibit.
     */
    double mispronounceProb = 0.15;
};

/** Generate a corpus over the given task world. */
std::vector<asr::Utterance>
buildSpeechCorpus(const asr::AsrWorld &world,
                  const SpeechCorpusConfig &cfg);

/**
 * Generate a corpus through the full DSP path: each frame is
 * rendered to audio samples by the front-end (band sinusoids +
 * white noise) and its features recovered by extraction, instead of
 * sampling features directly. Transcripts and recording conditions
 * are identical to buildSpeechCorpus for the same config (the
 * per-utterance generators are aligned); only the rendering differs.
 *
 * @param waveform_noise_scale converts the config's feature-space
 * noise sigmas into waveform-domain noise levels (the default keeps
 * the two paths' difficulty dials roughly comparable).
 */
std::vector<asr::Utterance>
buildSpeechCorpusViaWaveform(const asr::AsrWorld &world,
                             const SpeechCorpusConfig &cfg,
                             const asr::Frontend &frontend,
                             double waveform_noise_scale = 4.5);

} // namespace toltiers::dataset

#endif // TOLTIERS_DATASET_SPEECH_CORPUS_HH
