#include "dataset/speech_corpus.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"

namespace toltiers::dataset {

using asr::Utterance;

namespace {

/** Renders one frame for a phoneme under the utterance conditions. */
using FrameRenderer = std::function<asr::Frame(
    std::size_t phoneme, const std::vector<float> &speaker_offset,
    double sigma, common::Pcg32 &rng)>;

std::vector<Utterance>
buildCorpusImpl(const asr::AsrWorld &world,
                const SpeechCorpusConfig &cfg,
                const FrameRenderer &render)
{
    TT_ASSERT(cfg.minWords >= 1 && cfg.minWords <= cfg.maxWords,
              "invalid word-count range");
    TT_ASSERT(cfg.minFramesPerPhoneme >= 1 &&
                  cfg.minFramesPerPhoneme <= cfg.maxFramesPerPhoneme,
              "invalid frames-per-phoneme range");
    TT_ASSERT(cfg.easyFraction + cfg.mediumFraction <= 1.0,
              "mixture fractions exceed 1");

    common::Pcg32 master(cfg.seed);
    const asr::Lexicon &lex = world.lexicon();

    std::vector<Utterance> corpus;
    corpus.reserve(cfg.utterances);

    for (std::size_t id = 0; id < cfg.utterances; ++id) {
        // Per-utterance generator: utterance id fully determines its
        // content, independent of how many draws rendering the
        // previous utterances consumed (e.g. under different
        // mispronunciation or rate settings).
        common::Pcg32 rng = master.split();

        Utterance utt;
        utt.id = id;

        // Transcript.
        auto len = static_cast<std::size_t>(rng.uniformInt(
            static_cast<int>(cfg.minWords),
            static_cast<int>(cfg.maxWords)));
        utt.refWords = world.lm().sampleSentence(len, rng);
        utt.refText = lex.text(utt.refWords);

        // Recording conditions.
        double u = rng.nextDouble();
        double sigma;
        if (u < cfg.easyFraction) {
            sigma = cfg.easySigma;
        } else if (u < cfg.easyFraction + cfg.mediumFraction) {
            sigma = cfg.mediumSigma;
        } else {
            sigma = cfg.hardSigma;
        }
        sigma = std::max(
            0.01, sigma + rng.uniform(-cfg.sigmaJitter,
                                      cfg.sigmaJitter));
        utt.noiseSigma = sigma;
        utt.framesPerPhoneme = static_cast<std::size_t>(
            rng.uniformInt(static_cast<int>(cfg.minFramesPerPhoneme),
                           static_cast<int>(cfg.maxFramesPerPhoneme)));

        std::vector<float> speaker(asr::kFeatureDim);
        for (float &x : speaker) {
            x = static_cast<float>(
                rng.gaussian(0.0, cfg.speakerOffsetSigma));
        }

        // Rendering: per word, per phoneme, a run of noisy frames
        // whose length jitters by one frame (speaking-rate noise).
        // With mispronounceProb, the speaker utters a different word
        // than the transcript records.
        for (int word_id : utt.refWords) {
            int spoken = word_id;
            if (rng.bernoulli(cfg.mispronounceProb)) {
                spoken = static_cast<int>(rng.nextBounded(
                    static_cast<std::uint32_t>(lex.vocabSize())));
            }
            const asr::Word &word = lex.word(spoken);
            for (std::size_t ph : word.phonemes) {
                auto run = static_cast<long>(utt.framesPerPhoneme);
                run += rng.uniformInt(-1, 1);
                run = std::max<long>(1, run);
                for (long f = 0; f < run; ++f) {
                    utt.frames.push_back(
                        render(ph, speaker, sigma, rng));
                }
            }
        }
        corpus.push_back(std::move(utt));
    }
    return corpus;
}

} // namespace

std::vector<Utterance>
buildSpeechCorpus(const asr::AsrWorld &world,
                  const SpeechCorpusConfig &cfg)
{
    const asr::AcousticModel &am = world.am();
    return buildCorpusImpl(
        world, cfg,
        [&am](std::size_t ph, const std::vector<float> &speaker,
              double sigma, common::Pcg32 &rng) {
            return am.synthesize(ph, speaker, sigma, rng);
        });
}

std::vector<Utterance>
buildSpeechCorpusViaWaveform(const asr::AsrWorld &world,
                             const SpeechCorpusConfig &cfg,
                             const asr::Frontend &frontend,
                             double waveform_noise_scale)
{
    TT_ASSERT(waveform_noise_scale >= 0.0,
              "waveform noise scale must be non-negative");
    const asr::PhonemeSet &phonemes = world.phonemes();
    return buildCorpusImpl(
        world, cfg,
        [&](std::size_t ph, const std::vector<float> &speaker,
            double sigma, common::Pcg32 &rng) {
            asr::Frame clean(asr::kFeatureDim);
            const auto &proto = phonemes.prototype(ph);
            for (std::size_t i = 0; i < asr::kFeatureDim; ++i)
                clean[i] = proto[i] + speaker[i];
            auto samples = frontend.synthesizeFrame(
                clean, sigma * waveform_noise_scale, rng);
            return frontend.extractFeatures(samples);
        });
}

} // namespace toltiers::dataset
