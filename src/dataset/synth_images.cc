#include "dataset/synth_images.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace toltiers::dataset {

using common::Pcg32;

namespace {

const char *kClassNames[kImageClasses] = {
    "hbar", "vbar", "diag", "antidiag", "disc",
    "ring", "square", "cross", "checker", "dots",
};

/** Paint one class pattern (amplitude 1) centered in an s x s grid. */
void
paintPattern(std::size_t cls, std::vector<float> &img, std::size_t s)
{
    auto at = [&](long y, long x) -> float & {
        return img[static_cast<std::size_t>(y) * s +
                   static_cast<std::size_t>(x)];
    };
    auto ls = static_cast<long>(s);
    long c = ls / 2;
    long r = ls / 3;

    switch (cls) {
      case 0: // horizontal bar
        for (long x = 1; x < ls - 1; ++x) {
            at(c, x) = 1.0f;
            at(c - 1, x) = 0.6f;
        }
        break;
      case 1: // vertical bar
        for (long y = 1; y < ls - 1; ++y) {
            at(y, c) = 1.0f;
            at(y, c - 1) = 0.6f;
        }
        break;
      case 2: // main diagonal
        for (long i = 1; i < ls - 1; ++i) {
            at(i, i) = 1.0f;
            if (i + 1 < ls)
                at(i + 1, i) = 0.5f;
        }
        break;
      case 3: // anti-diagonal
        for (long i = 1; i < ls - 1; ++i) {
            at(i, ls - 1 - i) = 1.0f;
            if (ls - i < ls)
                at(i, ls - i) = 0.5f;
        }
        break;
      case 4: // filled disc
        for (long y = 0; y < ls; ++y) {
            for (long x = 0; x < ls; ++x) {
                double d = std::hypot(static_cast<double>(y - c),
                                      static_cast<double>(x - c));
                if (d <= r)
                    at(y, x) = 1.0f;
            }
        }
        break;
      case 5: // ring
        for (long y = 0; y < ls; ++y) {
            for (long x = 0; x < ls; ++x) {
                double d = std::hypot(static_cast<double>(y - c),
                                      static_cast<double>(x - c));
                if (d <= r && d >= r - 1.8)
                    at(y, x) = 1.0f;
            }
        }
        break;
      case 6: // square outline
        for (long i = c - r; i <= c + r; ++i) {
            at(c - r, i) = 1.0f;
            at(c + r, i) = 1.0f;
            at(i, c - r) = 1.0f;
            at(i, c + r) = 1.0f;
        }
        break;
      case 7: // cross
        for (long i = 1; i < ls - 1; ++i) {
            at(c, i) = 1.0f;
            at(i, c) = 1.0f;
        }
        break;
      case 8: // checkerboard (period 3)
        for (long y = 0; y < ls; ++y) {
            for (long x = 0; x < ls; ++x) {
                if ((y / 3 + x / 3) % 2 == 0)
                    at(y, x) = 0.8f;
            }
        }
        break;
      case 9: // four corner dots
        for (long dy = -1; dy <= 1; ++dy) {
            for (long dx = -1; dx <= 1; ++dx) {
                at(c - r + dy, c - r + dx) = 1.0f;
                at(c - r + dy, c + r + dx) = 1.0f;
                at(c + r + dy, c - r + dx) = 1.0f;
                at(c + r + dy, c + r + dx) = 1.0f;
            }
        }
        break;
      default:
        common::panic("unknown image class ", cls);
    }
}

/** Shift an image by (dy, dx), zero-filling the exposed border. */
std::vector<float>
translate(const std::vector<float> &img, std::size_t s, int dy, int dx)
{
    std::vector<float> out(img.size(), 0.0f);
    auto ls = static_cast<long>(s);
    for (long y = 0; y < ls; ++y) {
        long sy = y - dy;
        if (sy < 0 || sy >= ls)
            continue;
        for (long x = 0; x < ls; ++x) {
            long sx = x - dx;
            if (sx < 0 || sx >= ls)
                continue;
            out[static_cast<std::size_t>(y) * s +
                static_cast<std::size_t>(x)] =
                img[static_cast<std::size_t>(sy) * s +
                    static_cast<std::size_t>(sx)];
        }
    }
    return out;
}

/** Add a short random stroke (clutter that confuses small models). */
void
addDistractor(std::vector<float> &img, std::size_t s, Pcg32 &rng)
{
    auto ls = static_cast<long>(s);
    long y = rng.uniformInt(0, static_cast<int>(ls - 1));
    long x = rng.uniformInt(0, static_cast<int>(ls - 1));
    long dy = rng.uniformInt(-1, 1);
    long dx = rng.uniformInt(-1, 1);
    if (dy == 0 && dx == 0)
        dx = 1;
    long len = rng.uniformInt(3, 5);
    float amp = static_cast<float>(rng.uniform(0.5, 0.9));
    for (long i = 0; i < len; ++i) {
        long py = y + i * dy;
        long px = x + i * dx;
        if (py < 0 || py >= ls || px < 0 || px >= ls)
            break;
        img[static_cast<std::size_t>(py) * s +
            static_cast<std::size_t>(px)] += amp;
    }
}

} // namespace

const char *
imageClassName(std::size_t cls)
{
    TT_ASSERT(cls < kImageClasses, "image class out of range");
    return kClassNames[cls];
}

ImageSet
buildImageSet(const ImageSetConfig &cfg)
{
    TT_ASSERT(cfg.size >= 8, "images must be at least 8x8");
    TT_ASSERT(cfg.count > 0, "image set must not be empty");
    TT_ASSERT(cfg.easyFraction + cfg.mediumFraction <= 1.0,
              "mixture fractions exceed 1");

    Pcg32 rng(cfg.seed);
    std::size_t s = cfg.size;

    ImageSet set;
    set.images = tensor::Tensor({cfg.count, 1, s, s});
    set.labels.resize(cfg.count);
    set.noise.resize(cfg.count);

    for (std::size_t i = 0; i < cfg.count; ++i) {
        std::size_t cls = rng.nextBounded(kImageClasses);
        set.labels[i] = cls;

        std::vector<float> img(s * s, 0.0f);
        paintPattern(cls, img, s);

        // Geometric and photometric augmentation.
        int dy = rng.uniformInt(-cfg.maxJitter, cfg.maxJitter);
        int dx = rng.uniformInt(-cfg.maxJitter, cfg.maxJitter);
        img = translate(img, s, dy, dx);
        auto amp = static_cast<float>(
            rng.uniform(cfg.minAmplitude, cfg.maxAmplitude));
        for (float &v : img)
            v *= amp;

        // Difficulty mixture: noise plus distractor clutter.
        double u = rng.nextDouble();
        double sigma;
        int distractors;
        if (u < cfg.easyFraction) {
            sigma = cfg.easyNoise;
            distractors = 0;
        } else if (u < cfg.easyFraction + cfg.mediumFraction) {
            sigma = cfg.mediumNoise;
            distractors = 1;
        } else {
            sigma = cfg.hardNoise;
            distractors = 2;
        }
        set.noise[i] = sigma;
        for (int d = 0; d < distractors; ++d)
            addDistractor(img, s, rng);
        for (float &v : img)
            v += static_cast<float>(rng.gaussian(0.0, sigma));

        // Roughly center the dynamic range for training stability.
        float *dst = set.images.data() + i * s * s;
        for (std::size_t p = 0; p < s * s; ++p)
            dst[p] = img[p] - 0.25f;
    }
    return set;
}

} // namespace toltiers::dataset
