/**
 * @file
 * Procedural image-classification dataset (the ILSVRC stand-in).
 *
 * Ten geometric pattern classes rendered with random translation,
 * amplitude scaling, distractor strokes, and a noise mixture. The
 * mixture gives the same difficulty spread the speech corpus has:
 * most samples are easy for every model version, a noisy tail
 * separates small from large networks.
 */

#ifndef TOLTIERS_DATASET_SYNTH_IMAGES_HH
#define TOLTIERS_DATASET_SYNTH_IMAGES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace toltiers::dataset {

/** Number of pattern classes. */
constexpr std::size_t kImageClasses = 10;

/** Printable class name. */
const char *imageClassName(std::size_t cls);

/** Image synthesis parameters. */
struct ImageSetConfig
{
    std::uint64_t seed = 7;
    std::size_t count = 4000;
    std::size_t size = 12;          //!< Square image edge length.

    // Difficulty mixture (remainder after easy+medium is hard).
    double easyFraction = 0.55;
    double mediumFraction = 0.25;
    double easyNoise = 0.15;
    double mediumNoise = 0.40;
    double hardNoise = 0.75;

    int maxJitter = 2;              //!< Translation range in pixels.
    double minAmplitude = 0.7;
    double maxAmplitude = 1.3;
};

/** A labelled image set. */
struct ImageSet
{
    tensor::Tensor images;          //!< [N, 1, size, size].
    std::vector<std::size_t> labels;
    std::vector<double> noise;      //!< Per-sample noise sigma.
    std::size_t classes = kImageClasses;

    std::size_t count() const { return labels.size(); }
};

/** Generate a labelled image set. */
ImageSet buildImageSet(const ImageSetConfig &cfg);

} // namespace toltiers::dataset

#endif // TOLTIERS_DATASET_SYNTH_IMAGES_HH
