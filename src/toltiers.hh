/**
 * @file
 * Umbrella header: the complete public API of the toltiers library.
 *
 * Downstream users can include this single header; the individual
 * module headers remain available for finer-grained dependencies.
 */

#ifndef TOLTIERS_TOLTIERS_HH
#define TOLTIERS_TOLTIERS_HH

// Common utilities.
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stopwatch.hh"
#include "common/strings.hh"
#include "common/table.hh"

// Execution core: work-stealing pool, parallel loops, RNG streams.
#include "exec/exec.hh"

// Statistics.
#include "stats/bootstrap.hh"
#include "stats/confusion.hh"
#include "stats/correlation.hh"
#include "stats/descriptive.hh"
#include "stats/histogram.hh"
#include "stats/kfold.hh"
#include "stats/levenshtein.hh"
#include "stats/normal.hh"
#include "stats/pareto.hh"

// Neural-network substrate.
#include "nn/layer.hh"
#include "nn/network.hh"
#include "nn/serialize.hh"
#include "nn/sgd.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

// Speech recognition substrate.
#include "asr/decoder.hh"
#include "asr/engine.hh"
#include "asr/frontend.hh"
#include "asr/service.hh"
#include "asr/versions.hh"
#include "asr/world.hh"

// Image classification substrate.
#include "ic/classifier.hh"
#include "ic/service.hh"
#include "ic/trainer.hh"
#include "ic/zoo.hh"

// Datasets.
#include "dataset/speech_corpus.hh"
#include "dataset/synth_images.hh"

// Observability: metrics, traces, guarantee monitoring.
#include "obs/export.hh"
#include "obs/guarantee.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"

// Serving layer.
#include "serving/api.hh"
#include "serving/cluster.hh"
#include "serving/deployment.hh"
#include "serving/instance.hh"
#include "serving/request.hh"
#include "serving/service_version.hh"

// Tolerance Tiers core.
#include "core/categories.hh"
#include "core/chain.hh"
#include "core/front_door.hh"
#include "core/learned_router.hh"
#include "core/measurement.hh"
#include "core/policy.hh"
#include "core/provisioner.hh"
#include "core/rule_generator.hh"
#include "core/simulator.hh"
#include "core/tier_service.hh"
#include "core/validation.hh"

#endif // TOLTIERS_TOLTIERS_HH
