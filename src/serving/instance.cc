#include "serving/instance.hh"

#include "common/logging.hh"

namespace toltiers::serving {

using common::fatal;

InstanceCatalog::InstanceCatalog()
{
    // Speeds/prices modelled on public-cloud CPU vs GPU inference
    // offerings: the GPU is ~8x faster on dense NN arithmetic but
    // ~9x the price per hour, so it only pays off for large models.
    types_ = {
        {"cpu-small", 1.0, 0.10},
        {"cpu-large", 1.6, 0.20},
        {"gpu", 8.0, 0.90},
    };
}

const InstanceType &
InstanceCatalog::get(const std::string &name) const
{
    for (const InstanceType &t : types_) {
        if (t.name == name)
            return t;
    }
    fatal("unknown instance type: '", name, "'");
}

} // namespace toltiers::serving
