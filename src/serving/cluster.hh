/**
 * @file
 * Discrete-event simulation of service-version node pools.
 *
 * The per-request analyses in the core layer are closed-form (no
 * queueing); this simulator adds contention: requests arrive over
 * time, each version is backed by a pool of identical nodes, and
 * jobs queue FIFO when all nodes are busy. It supports the three
 * execution shapes Tolerance Tier policies produce:
 *
 *  - a sequential chain of stages (escalation policies), where each
 *    stage queues at its pool when the previous one completes;
 *  - a concurrent race of two stages (concurrent / early-termination
 *    policies), where the job responds at the first completion if the
 *    fast result is acceptable — cancelling the other stage — or at
 *    the authoritative stage's completion otherwise.
 *
 * Costs are billed as busy node-seconds times the pool's node price,
 * including the partial busy time of cancelled stages — reproducing
 * the paper's observation that early termination still pays for the
 * big configuration it kills.
 *
 * The simulator can additionally run under an injected fault
 * schedule (setFaults): each stage execution deterministically
 * draws a fault keyed on (job, stage, attempt) — failures burn part
 * of the service time and retry after exponential backoff up to a
 * bound, timeouts hold their server for the hang latency before
 * retrying, slowdowns stretch the service time, and corruptions
 * complete normally but mark the job's answer wrong. A job whose
 * stage exhausts its retries responds as failed (never silently
 * dropped), and the whole chaos run is bit-for-bit reproducible
 * from the schedule seed.
 */

#ifndef TOLTIERS_SERVING_CLUSTER_HH
#define TOLTIERS_SERVING_CLUSTER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.hh"
#include "serving/fault.hh"

namespace toltiers::obs {
class Registry;
} // namespace toltiers::obs

namespace toltiers::serving {

/** One node pool backing a service version. */
struct SimPool
{
    std::string name;
    std::size_t servers = 1;
    double pricePerSecond = 0.0;
};

/** One execution stage of a job: a service time at a pool. */
struct StageSpec
{
    std::size_t pool = 0;
    double serviceTime = 0.0;
};

/** One simulated request. */
struct SimJob
{
    double arrival = 0.0;
    bool concurrent = false;       //!< Race stages[0] and stages[1].
    bool acceptFirst = true;       //!< Race: respond at first finish.
    std::vector<StageSpec> stages; //!< Chain, or the two raced stages.
};

/** Fault-injection configuration for a simulation run. */
struct SimFaultConfig
{
    /** The fault plan; null disables injection. Must outlive the
     * simulator's run() calls. */
    const FaultSchedule *schedule = nullptr;
    std::size_t maxRetries = 2;      //!< Per stage execution.
    double backoffBaseSeconds = 0.01; //!< Retry k waits base*mult^k.
    double backoffMultiplier = 2.0;
};

/** Per-job outcome. */
struct JobOutcome
{
    double responseTime = 0.0; //!< Response minus arrival.
    double queueing = 0.0;     //!< Total time spent waiting.
    double cost = 0.0;         //!< Busy node-seconds times prices.
    bool failed = false;  //!< A stage exhausted its retries.
    bool corrupt = false; //!< The served answer was corrupted.
    std::size_t retries = 0; //!< Re-executions across all stages.
};

/** Aggregate simulation report. */
struct SimReport
{
    std::vector<JobOutcome> jobs;
    std::vector<double> poolBusySeconds; //!< Per pool.
    std::vector<double> poolUtilization; //!< Busy / (servers * span).
    /** Busy node-seconds billed to stages that were cancelled by a
     * raced winner — the "paid for the big configuration it killed"
     * cost component, per pool. */
    std::vector<double> poolCancelledBusySeconds;
    double makespan = 0.0;
    double meanResponse = 0.0;
    double p99Response = 0.0;
    double totalCost = 0.0;
    std::size_t failedJobs = 0;   //!< Jobs that responded failed.
    std::size_t corruptJobs = 0;  //!< Jobs served a wrong answer.
    std::size_t totalRetries = 0; //!< Stage re-executions.
};

/** FIFO multi-server queueing simulator. */
class ClusterSim
{
  public:
    explicit ClusterSim(std::vector<SimPool> pools);

    /**
     * Record per-pool telemetry into `registry` on every run():
     * queue-wait histograms, busy/cancelled-busy counters, and
     * utilization gauges, all labelled {pool=<name>}. Pass nullptr
     * to detach. The registry must outlive the simulator.
     */
    void attachMetrics(obs::Registry *registry);

    /**
     * Run subsequent simulations under the given fault plan. The
     * referenced schedule must outlive the simulator; a config with
     * a null schedule restores fault-free operation.
     */
    void setFaults(const SimFaultConfig &faults);

    /**
     * Run the given jobs to completion. Jobs need not be sorted by
     * arrival. Concurrent jobs must have exactly two stages; stage 1
     * is the authoritative (accurate) version when acceptFirst is
     * false.
     */
    SimReport run(const std::vector<SimJob> &jobs) const;

    std::size_t poolCount() const { return pools_.size(); }

    /** The pool's name (index must be < poolCount()). */
    const std::string &poolName(std::size_t pool) const;

    /** Servers currently provisioned in the pool. */
    std::size_t poolServers(std::size_t pool) const;

    /**
     * Re-provision the pool to `servers` (clamped up to 1) — the
     * actuator a runtime Provisioner drives; subsequent run() calls
     * see the new capacity.
     */
    void setPoolServers(std::size_t pool, std::size_t servers);

  private:
    std::vector<SimPool> pools_;
    obs::Registry *metrics_ = nullptr;
    SimFaultConfig faults_;
};

/** Poisson arrival times: n arrivals at the given mean rate (1/s). */
std::vector<double> poissonArrivals(std::size_t n, double rate,
                                    common::Pcg32 &rng);

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_CLUSTER_HH
