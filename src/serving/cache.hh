/**
 * @file
 * Sharded, LRU-evicting result cache for the serving path.
 *
 * The paper's own motivation (§1, Fig. 4) is that the large majority
 * of requests — ~74% for ASR, ~65% for IC — produce the *same*
 * answer across service versions; a serving layer that recomputes
 * the tier chain for every repeated input wastes exactly the
 * latency and money tiering is meant to save. Clipper and INFaaS
 * both front their model backends with a prediction cache for this
 * reason, and this cache plays the same role for the tier service:
 * a hit skips tier-chain execution entirely and answers in cache
 * lookup time at zero backend cost.
 *
 * Keying and tolerance safety: an entry is keyed by a request
 * fingerprint — input hash × tolerance bucket × objective
 * (CacheFingerprint) — and stores the tolerance bound the cached
 * result was produced under (the matched routing rule's tolerance,
 * whose ensemble the rule generator bounded to degrade by at most
 * that much). lookup() serves an entry only when that stored bound
 * is ≤ the incoming request's tolerance, so a cached answer can
 * never weaken a guarantee: the result was already proven good
 * enough for a *stricter* or equal tier. Responses that fell back
 * or violated their guarantee are never inserted.
 *
 * Concurrency model: the cache is sharded over a power-of-two
 * number of independent shards, each with its own mutex, LRU list,
 * and hash map; a fingerprint maps to one shard by its mixed hash,
 * so concurrent requests for different inputs proceed without
 * contending on a single lock. The byte budget is split evenly
 * across shards and enforced per shard (the standard sharded-LRU
 * approximation of a global LRU).
 *
 * Expiry and accounting: entries older than `ttlSeconds` (measured
 * on a monotonic clock since cache construction) are evicted lazily
 * when touched. Every lookup is exactly one of hit / miss, every
 * inserted entry leaves the cache as exactly one of eviction /
 * expiration / replacement (or is still resident), and the counters
 * are mirrored into an obs::Registry as tt_cache_* series when one
 * is attached — the conservation the cache stress test checks.
 */

#ifndef TOLTIERS_SERVING_CACHE_HH
#define TOLTIERS_SERVING_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hh"
#include "common/stopwatch.hh"
#include "obs/metrics.hh"
#include "serving/request.hh"

namespace toltiers::serving {

/**
 * splitmix64-style 64-bit mixer (Steele, Lea & Flood / Vigna): a
 * bijective finalizer used to turn payload indices and fingerprint
 * fields into well-distributed hash bits.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Identity of one cacheable unit of work: which input, under which
 * tolerance bucket, optimizing what. Two requests share a
 * fingerprint exactly when the tier service would serve them with
 * the same rule ensemble over the same payload — which is what
 * makes a cached result exchangeable between them.
 */
struct CacheFingerprint
{
    /** Hash of the request input (here: the payload index mixed
     * through mix64; a network front door would hash the body). */
    std::uint64_t inputHash = 0;
    /** The tolerance bucket — the matched routing rule's tolerance,
     * quantized to its bit pattern. Requests whose tolerances fall
     * in the same bucket are served by the same rule. */
    std::uint64_t toleranceBits = 0;
    /** The request objective (serving::Objective), widened. */
    std::uint32_t objective = 0;

    bool
    operator==(const CacheFingerprint &o) const
    {
        return inputHash == o.inputHash &&
               toleranceBits == o.toleranceBits &&
               objective == o.objective;
    }

    /** Mixed 64-bit hash over all three fields. */
    std::uint64_t
    hash() const
    {
        return mix64(inputHash ^ mix64(toleranceBits) ^
                     mix64(objective));
    }
};

/** Build the fingerprint of (input, tolerance bucket, objective). */
CacheFingerprint makeFingerprint(std::uint64_t input_hash,
                                 Objective objective,
                                 double tolerance_bucket);

/** The cached portion of a served response. */
struct CachedResult
{
    std::string output;      //!< The result payload.
    double confidence = 0.0; //!< Confidence of the cached result.
    /** Tolerance bound the result was produced under (the matched
     * rule's tolerance). lookup() only serves this entry to
     * requests whose tolerance is >= this bound. */
    double tolerance = 0.0;
};

/** Result-cache construction parameters. */
struct CacheConfig
{
    /** Total byte budget across all shards; entries are evicted LRU
     * per shard once its share (capacityBytes / shards) is full. */
    std::size_t capacityBytes = 64 * 1024 * 1024;
    /** Entry lifetime in seconds on a monotonic clock; 0 disables
     * expiry. */
    double ttlSeconds = 0.0;
    /** Requested shard count; rounded up to a power of two, min 1. */
    std::size_t shards = 16;
    /** Optional registry for the tt_cache_* series. */
    obs::Registry *metrics = nullptr;
};

/** Point-in-time cache accounting (exact once traffic quiesces). */
struct CacheStats
{
    std::uint64_t lookups = 0; //!< hits + misses, exactly.
    std::uint64_t hits = 0;    //!< Lookups served from the cache.
    std::uint64_t misses = 0;  //!< Lookups that fell through.
    /** Misses caused by an entry whose tolerance bound exceeded the
     * request's tolerance (also counted in misses). */
    std::uint64_t toleranceRejects = 0;
    std::uint64_t insertions = 0;  //!< Entries actually inserted.
    std::uint64_t evictions = 0;   //!< Removed by the byte budget.
    std::uint64_t expirations = 0; //!< Removed by TTL.
    std::uint64_t replacements = 0; //!< Overwritten by a re-insert.
    /** Inserts skipped because one entry exceeded a whole shard's
     * byte budget (nothing was cached). */
    std::uint64_t oversized = 0;
    std::size_t entries = 0; //!< Resident entries now.
    std::size_t bytes = 0;   //!< Resident bytes now.
};

/**
 * Sharded LRU result cache; see the file comment for the keying,
 * tolerance-safety, and accounting contracts. All methods are
 * thread-safe; distinct shards never contend.
 */
class ResultCache
{
  public:
    explicit ResultCache(CacheConfig cfg = CacheConfig());

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look up `key` for a request at `request_tolerance`. Returns
     * true and fills `out` only when a live entry exists whose
     * stored tolerance bound is <= request_tolerance; a hit
     * promotes the entry to most-recently-used. An expired entry is
     * removed on touch and reported as a miss.
     */
    [[nodiscard]] bool lookup(const CacheFingerprint &key,
                              double request_tolerance,
                              CachedResult &out);

    /**
     * Insert (or replace) the entry for `key`. Evicts
     * least-recently-used entries of the target shard until its
     * byte share fits; an entry larger than a whole shard's share
     * is not cached at all (counted in CacheStats::oversized).
     */
    void insert(const CacheFingerprint &key, CachedResult result);

    /** Drop every entry (counters are retained). */
    void clear();

    /** Point-in-time accounting snapshot. */
    CacheStats stats() const;

    /** Actual shard count (power of two). */
    std::size_t shardCount() const { return shards_.size(); }

    /** Total byte budget the cache enforces. */
    std::size_t capacityBytes() const { return capacityBytes_; }

  private:
    struct Entry
    {
        CacheFingerprint key;
        CachedResult result;
        std::size_t bytes = 0;
        double insertSeconds = 0.0; //!< Clock time at insert.
    };

    struct FingerprintHash
    {
        std::size_t
        operator()(const CacheFingerprint &k) const
        {
            return static_cast<std::size_t>(k.hash());
        }
    };

    struct Shard
    {
        mutable common::Mutex mu;
        /** MRU at front. */
        std::list<Entry> lru GUARDED_BY(mu);
        /** Fingerprint to LRU node. */
        std::unordered_map<CacheFingerprint,
                           std::list<Entry>::iterator,
                           FingerprintHash>
            map GUARDED_BY(mu);
        /** Resident bytes of this shard. */
        std::size_t bytes GUARDED_BY(mu) = 0;
    };

    Shard &shardFor(const CacheFingerprint &key);
    bool expired(const Entry &e, double now) const;
    void updateGauges() const;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t capacityBytes_;
    std::size_t shardBudget_;
    double ttlSeconds_;
    common::Stopwatch clock_; //!< Monotonic TTL time base.

    // Striped hot tallies; mirrored into metrics_ when attached.
    obs::Counter lookups_;
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter toleranceRejects_;
    obs::Counter insertions_;
    obs::Counter evictions_;
    obs::Counter expirations_;
    obs::Counter replacements_;
    obs::Counter oversized_;

    obs::Registry *metrics_ = nullptr;
};

/** Approximate resident size of one entry (key + payload + bookkeeping). */
std::size_t cacheEntryBytes(const CachedResult &result);

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_CACHE_HH
