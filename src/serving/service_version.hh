/**
 * @file
 * The abstract service version: one deployable model configuration
 * bound to a workload and an instance type. Both the ASR engine
 * versions and the IC network versions implement this interface, so
 * the tier layer is model-agnostic — the property the paper
 * emphasizes ("generalizes to many different machine learning
 * applications").
 */

#ifndef TOLTIERS_SERVING_SERVICE_VERSION_HH
#define TOLTIERS_SERVING_SERVICE_VERSION_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace toltiers::serving {

/** The outcome of one version processing one request payload. */
struct VersionResult
{
    std::string output;           //!< Transcript or class name.
    double confidence = 0.0;      //!< Model self-confidence in (0,1).
    double latencySeconds = 0.0;  //!< On this version's instance.
    double costDollars = 0.0;     //!< Node-seconds times node price.
    double error = 0.0;           //!< Vs ground truth (WER or 0/1).
    std::uint64_t workUnits = 0;  //!< Machine-independent work.
};

/**
 * The outcome of one *attempt* against a version. A backend that
 * errors out reports failed = true with the partial latency/cost it
 * burned before erroring; a hung backend simply reports a latency
 * far beyond any deadline (timeouts are detected by the caller's
 * deadline, exactly as in a real client). A silently corrupted
 * result is *not* failed — the caller cannot detect it without
 * ground truth, which is the point.
 */
struct AttemptResult
{
    VersionResult result;
    bool failed = false; //!< Backend returned an explicit error.
};

/** A deployable model version bound to a workload and an instance. */
class ServiceVersion
{
  public:
    virtual ~ServiceVersion() = default;

    /** Version name, e.g. "v3" or "cnn-m". */
    virtual const std::string &name() const = 0;

    /** Instance type the version is deployed on. */
    virtual const std::string &instanceName() const = 0;

    /** Number of payloads in the bound workload. */
    virtual std::size_t workloadSize() const = 0;

    /** Process payload `index` of the bound workload. */
    virtual VersionResult process(std::size_t index) const = 0;

    /**
     * Process one numbered attempt at payload `index`. Reliable
     * versions ignore the attempt number and never fail; the fault
     * injector overrides this to key deterministic fault decisions
     * on (payload, attempt). Must be thread-safe for distinct
     * attempt numbers (retry/hedge paths call it concurrently).
     */
    virtual AttemptResult
    processAttempt(std::size_t index, std::uint64_t attempt) const
    {
        (void)attempt;
        return {process(index), false};
    }
};

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_SERVICE_VERSION_HH
