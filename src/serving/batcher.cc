#include "serving/batcher.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace toltiers::serving {

void
AdaptiveBatcher::Control::observe(std::size_t batch_size,
                                  double wall_seconds)
{
    batches.inc();
    batchedRequests.inc(static_cast<double>(batch_size));
    if (metrics != nullptr) {
        metrics->counter("tt_batcher_batches_total", {}, "").inc();
        metrics
            ->counter("tt_batcher_batched_requests_total", {}, "")
            .inc(static_cast<double>(batch_size));
        metrics
            ->histogram("tt_batch_latency_seconds", {},
                        obs::exponentialBounds(1e-6, 1.0, 13),
                        "Wall latency of dispatched batches")
            .observe(wall_seconds);
    }
    if (!adaptive)
        return;

    // Clipper-style AIMD: halve on overshoot, otherwise creep up
    // one request at a time — but only when the batch actually
    // filled the current limit (an under-full batch says nothing
    // about whether a larger one would fit the target).
    std::size_t cur = limit.load(std::memory_order_relaxed);
    if (wall_seconds > latencyTargetSeconds) {
        std::size_t next = std::max<std::size_t>(1, cur / 2);
        if (next != cur &&
            limit.compare_exchange_strong(
                cur, next, std::memory_order_relaxed)) {
            limitDecreases.inc();
            if (metrics != nullptr) {
                metrics
                    ->counter("tt_batcher_limit_decreases_total",
                              {}, "")
                    .inc();
            }
        }
    } else if (batch_size >= cur && cur < maxBatch) {
        if (limit.compare_exchange_strong(
                cur, cur + 1, std::memory_order_relaxed)) {
            limitIncreases.inc();
            if (metrics != nullptr) {
                metrics
                    ->counter("tt_batcher_limit_increases_total",
                              {}, "")
                    .inc();
            }
        }
    }
    if (metrics != nullptr) {
        metrics->gauge("tt_batcher_limit", {}, "")
            .set(static_cast<double>(
                limit.load(std::memory_order_relaxed)));
    }
}

AdaptiveBatcher::AdaptiveBatcher(BatchDispatch dispatch,
                                 BatcherConfig cfg)
    : dispatch_(std::move(dispatch)), cfg_(cfg)
{
    TT_ASSERT(cfg_.maxBatch >= 1, "batcher needs maxBatch >= 1");
    TT_ASSERT(static_cast<bool>(dispatch_),
              "batcher needs a dispatch callback");
    control_ = std::make_shared<Control>();
    control_->maxBatch = cfg_.maxBatch;
    control_->latencyTargetSeconds = cfg_.latencyTargetSeconds;
    control_->adaptive = cfg_.adaptive;
    control_->metrics = cfg_.metrics;
    // Adaptive mode probes upward from 1; static mode pins the
    // ceiling.
    control_->limit.store(cfg_.adaptive ? 1 : cfg_.maxBatch,
                          std::memory_order_relaxed);

    if (cfg_.metrics != nullptr) {
        // Pre-register so an idle batcher exports zeroed series.
        cfg_.metrics->counter("tt_batcher_submitted_total", {},
                              "Requests accepted by the batcher");
        cfg_.metrics->counter("tt_batcher_batches_total", {},
                              "Batches dispatched");
        cfg_.metrics->counter(
            "tt_batcher_batched_requests_total", {},
            "Requests dispatched inside batches");
        cfg_.metrics->counter("tt_batcher_limit_increases_total",
                              {}, "AIMD additive increases");
        cfg_.metrics->counter("tt_batcher_limit_decreases_total",
                              {}, "AIMD multiplicative decreases");
        cfg_.metrics->histogram(
            "tt_batcher_queue_wait_seconds", {},
            obs::exponentialBounds(1e-7, 1.0, 15),
            "Seconds requests queued in the batcher before "
            "dispatch");
        cfg_.metrics
            ->gauge("tt_batcher_limit", {},
                    "Current adaptive batch limit")
            .set(static_cast<double>(
                control_->limit.load(std::memory_order_relaxed)));
    }

    flusher_ = std::thread([this] { flusherMain(); });
}

AdaptiveBatcher::~AdaptiveBatcher()
{
    {
        common::MutexLock lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    flusher_.join();
    flush(); // Dispatch whatever the flusher had not yet seen.
}

AdaptiveBatcher::GroupKey
AdaptiveBatcher::keyOf(const ServiceRequest &request) const
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(request.tier.tolerance));
    std::memcpy(&bits, &request.tier.tolerance, sizeof(bits));
    return {static_cast<std::uint32_t>(request.tier.objective),
            bits, request.tenant};
}

void
AdaptiveBatcher::submit(ServiceRequest request)
{
    submitted_.inc();
    if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("tt_batcher_submitted_total", {}, "")
            .inc();
    }

    std::vector<ServiceRequest> ready;
    std::vector<Clock::time_point> ready_arrivals;
    {
        common::MutexLock lock(mu_);
        Group &group = pending_[keyOf(request)];
        Clock::time_point now = Clock::now();
        if (group.requests.empty())
            group.oldestArrival = now;
        group.requests.push_back(std::move(request));
        group.arrivals.push_back(now);
        if (group.requests.size() >=
            control_->limit.load(std::memory_order_relaxed)) {
            ready = std::move(group.requests);
            ready_arrivals = std::move(group.arrivals);
            group.requests.clear();
            group.arrivals.clear();
        }
    }
    if (!ready.empty()) {
        dispatchGroup(std::move(ready), std::move(ready_arrivals));
    } else {
        // A fresh group needs the flusher to arm its deadline.
        cv_.notify_one();
    }
}

void
AdaptiveBatcher::flush()
{
    std::vector<std::pair<std::vector<ServiceRequest>,
                          std::vector<Clock::time_point>>>
        groups;
    {
        common::MutexLock lock(mu_);
        for (auto &[key, group] : pending_) {
            if (!group.requests.empty()) {
                groups.emplace_back(std::move(group.requests),
                                    std::move(group.arrivals));
            }
        }
        pending_.clear();
    }
    for (auto &[requests, arrivals] : groups)
        dispatchGroup(std::move(requests), std::move(arrivals));
}

void
AdaptiveBatcher::dispatchGroup(
    std::vector<ServiceRequest> requests,
    std::vector<Clock::time_point> arrivals)
{
    // Stamp every request's measured batch wait at the moment it
    // leaves the batcher, so the downstream stage attribution can
    // bill the queueing to the batch-wait stage.
    Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
        double wait =
            i < arrivals.size()
                ? std::chrono::duration<double>(now - arrivals[i])
                      .count()
                : 0.0;
        requests[i].batchWaitSeconds = std::max(0.0, wait);
        if (cfg_.metrics != nullptr) {
            cfg_.metrics
                ->histogram("tt_batcher_queue_wait_seconds", {},
                            obs::exponentialBounds(1e-7, 1.0, 15),
                            "Seconds requests queued in the "
                            "batcher before dispatch")
                .observe(requests[i].batchWaitSeconds);
        }
    }

    // Chunk to the hard ceiling: a group can transiently exceed the
    // adaptive limit when AIMD halves it between submit and here.
    std::size_t offset = 0;
    while (offset < requests.size()) {
        std::size_t n = std::min(cfg_.maxBatch,
                                 requests.size() - offset);
        std::vector<ServiceRequest> chunk(
            std::make_move_iterator(requests.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        offset)),
            std::make_move_iterator(requests.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        offset + n)));
        offset += n;
        // The hook captures the shared control block, not `this`:
        // a batch may outlive the batcher.
        std::shared_ptr<Control> control = control_;
        dispatch_(std::move(chunk),
                  [control](std::size_t batch_size,
                            double wall_seconds) {
                      control->observe(batch_size, wall_seconds);
                  });
    }
}

void
AdaptiveBatcher::flusherMain()
{
    common::UniqueLock lock(mu_);
    auto delay = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(cfg_.maxDelaySeconds));
    while (!stop_) {
        // Earliest deadline across pending groups, if any.
        bool have_deadline = false;
        Clock::time_point deadline{};
        for (const auto &[key, group] : pending_) {
            if (group.requests.empty())
                continue;
            Clock::time_point d = group.oldestArrival + delay;
            if (!have_deadline || d < deadline) {
                deadline = d;
                have_deadline = true;
            }
        }

        if (!have_deadline) {
            cv_.wait(lock.native());
            continue;
        }
        if (cv_.wait_until(lock.native(), deadline) ==
            std::cv_status::no_timeout)
            continue; // Re-derive deadlines (new group / stop).

        // Deadline passed: flush every overdue group.
        Clock::time_point now = Clock::now();
        std::vector<std::pair<std::vector<ServiceRequest>,
                              std::vector<Clock::time_point>>>
            due;
        for (auto &[key, group] : pending_) {
            if (!group.requests.empty() &&
                group.oldestArrival + delay <= now) {
                due.emplace_back(std::move(group.requests),
                                 std::move(group.arrivals));
                group.requests.clear();
                group.arrivals.clear();
            }
        }
        if (due.empty())
            continue;
        lock.unlock();
        for (auto &[requests, arrivals] : due)
            dispatchGroup(std::move(requests), std::move(arrivals));
        lock.lock();
    }
}

std::size_t
AdaptiveBatcher::currentBatchLimit() const
{
    return control_->limit.load(std::memory_order_relaxed);
}

BatcherStats
AdaptiveBatcher::stats() const
{
    auto count = [](const obs::Counter &c) {
        return static_cast<std::uint64_t>(c.value() + 0.5);
    };
    BatcherStats s;
    s.submitted = count(submitted_);
    s.batches = count(control_->batches);
    s.batchedRequests = count(control_->batchedRequests);
    s.limitIncreases = count(control_->limitIncreases);
    s.limitDecreases = count(control_->limitDecreases);
    s.currentLimit =
        control_->limit.load(std::memory_order_relaxed);
    {
        common::MutexLock lock(mu_);
        for (const auto &[key, group] : pending_)
            s.pending += group.requests.size();
    }
    return s;
}

} // namespace toltiers::serving
