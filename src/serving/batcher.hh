/**
 * @file
 * Adaptive micro-batcher for the serving path.
 *
 * Dispatching every request as its own pool task pays per-task
 * scheduling overhead and scatters same-tier work across workers.
 * Clipper's serving layer showed that coalescing requests into
 * small batches under a latency bound recovers that overhead, and
 * that the right batch size is a moving target best tracked by
 * AIMD: grow the batch additively while the observed per-batch
 * latency stays under the target, halve it multiplicatively the
 * moment a batch overshoots. This batcher implements exactly that
 * policy in front of the tier service's concurrent front door.
 *
 * Mechanics: submit() appends the request to the pending group of
 * its batch key — (objective, tolerance bucket), i.e. requests the
 * tier service would route through the same rule ensemble. A group
 * is dispatched when it reaches the current adaptive batch limit
 * (from the submitting thread, inline) or when its oldest request
 * has waited `maxDelaySeconds` (from the batcher's flusher thread).
 * Dispatch hands the batch to a caller-supplied BatchDispatch
 * callback — in this repo, TierFrontDoor::submitBatch, which runs
 * the whole batch as one pool task — together with a completion
 * hook the executor invokes with the batch's measured wall latency;
 * that measurement drives the AIMD adjustment.
 *
 * Layering: the batcher lives in serving/ and knows nothing about
 * the core tier service — it batches ServiceRequests and calls a
 * std::function. The glue to TierFrontDoor::submitBatch is one
 * lambda at the call site (see bench/abl_cache.cc and
 * examples), which keeps serving/ free of a dependency cycle on
 * core/.
 *
 * Lifetime: the destructor flushes pending requests and joins the
 * flusher thread. AIMD state is held in a shared control block
 * captured by the completion hooks, so batches still executing when
 * the batcher is destroyed complete safely; callers who need all
 * *responses* collected should drain the executor (e.g.
 * TierFrontDoor::drain) after destroying or flushing the batcher.
 */

#ifndef TOLTIERS_SERVING_BATCHER_HH
#define TOLTIERS_SERVING_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/mutex.hh"
#include "obs/metrics.hh"
#include "serving/request.hh"

namespace toltiers::serving {

/**
 * Completion hook for one dispatched batch: the executor calls it
 * exactly once with the batch size and the measured wall-clock
 * seconds from dispatch to the last response.
 */
using BatchDone = std::function<void(std::size_t batch_size,
                                     double wall_seconds)>;

/**
 * Executes one closed batch. The callback owns the requests and
 * must eventually invoke `done` (the AIMD feedback path); dropping
 * it degrades the batcher to its static limits but loses nothing
 * else.
 */
using BatchDispatch =
    std::function<void(std::vector<ServiceRequest> batch,
                       BatchDone done)>;

/** Batcher construction parameters. */
struct BatcherConfig
{
    /** Hard ceiling on a dispatched batch's size (>= 1). */
    std::size_t maxBatch = 16;
    /** Longest a request may wait for co-batching before its group
     * is flushed regardless of size. */
    double maxDelaySeconds = 200e-6;
    /** AIMD latency target: a batch whose measured wall latency
     * exceeds this halves the adaptive limit; a full batch under it
     * raises the limit by one. */
    double latencyTargetSeconds = 2e-3;
    /** When false the adaptive limit is pinned to maxBatch. */
    bool adaptive = true;
    /** Optional registry for the tt_batcher_* series. */
    obs::Registry *metrics = nullptr;
};

/** Point-in-time batcher accounting. */
struct BatcherStats
{
    std::uint64_t submitted = 0; //!< Requests accepted.
    std::uint64_t batches = 0;   //!< Batches dispatched.
    /** Requests dispatched inside batches (== submitted once the
     * batcher is flushed). */
    std::uint64_t batchedRequests = 0;
    std::uint64_t limitIncreases = 0; //!< AIMD additive steps.
    std::uint64_t limitDecreases = 0; //!< AIMD halvings.
    std::size_t currentLimit = 0;     //!< Adaptive limit now.
    std::size_t pending = 0;          //!< Waiting, not dispatched.
};

/** AIMD micro-batcher; see the file comment. Thread-safe. */
class AdaptiveBatcher
{
  public:
    /** @param dispatch executor for closed batches (see
     * BatchDispatch); copied into the batcher. */
    explicit AdaptiveBatcher(BatchDispatch dispatch,
                             BatcherConfig cfg = BatcherConfig());

    /** Flushes pending requests and joins the flusher thread. */
    ~AdaptiveBatcher();

    AdaptiveBatcher(const AdaptiveBatcher &) = delete;
    AdaptiveBatcher &operator=(const AdaptiveBatcher &) = delete;

    /**
     * Enqueue one request into its batch group. Dispatches the
     * group inline when it reaches the adaptive limit.
     */
    void submit(ServiceRequest request);

    /** Dispatch every pending group now, regardless of age/size. */
    void flush();

    /** The adaptive batch limit right now, in [1, maxBatch]. */
    std::size_t currentBatchLimit() const;

    /** Point-in-time accounting snapshot. */
    BatcherStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** Requests sharing one rule bucket, batched together. */
    struct Group
    {
        std::vector<ServiceRequest> requests;
        /** Per-request arrival instants, parallel to `requests` —
         * stamped at submit() so dispatch can attribute each
         * request's batch-wait time individually. */
        std::vector<Clock::time_point> arrivals;
        Clock::time_point oldestArrival;
    };

    /** Batch key: same-objective, same-tolerance-bucket, SAME-TENANT
     * requests — tenants never share a batch, so one tenant's batch
     * budget (and front-door fair-queue cost) is never spent on
     * another's traffic. */
    using GroupKey =
        std::tuple<std::uint32_t, std::uint64_t, std::string>;

    /**
     * AIMD state shared with in-flight completion hooks, so a batch
     * finishing after the batcher is gone still lands safely.
     */
    struct Control
    {
        std::atomic<std::size_t> limit{1};
        std::size_t maxBatch = 16;
        double latencyTargetSeconds = 0.0;
        bool adaptive = true;
        obs::Counter batches;
        obs::Counter batchedRequests;
        obs::Counter limitIncreases;
        obs::Counter limitDecreases;
        obs::Registry *metrics = nullptr;

        /** Apply one batch observation (the AIMD step). */
        void observe(std::size_t batch_size, double wall_seconds);
    };

    void flusherMain();
    /** Dispatch `requests` (chunked to maxBatch), stamping each
     * request's batchWaitSeconds from its arrival; call unlocked. */
    void dispatchGroup(std::vector<ServiceRequest> requests,
                       std::vector<Clock::time_point> arrivals);
    GroupKey keyOf(const ServiceRequest &request) const;

    BatchDispatch dispatch_;
    BatcherConfig cfg_;
    std::shared_ptr<Control> control_;

    mutable common::Mutex mu_;
    std::condition_variable cv_;
    /** Open batch groups by key. */
    std::map<GroupKey, Group> pending_ GUARDED_BY(mu_);
    /** Set under mu_ by the destructor to stop the flusher. */
    bool stop_ GUARDED_BY(mu_) = false;

    obs::Counter submitted_;
    std::thread flusher_;
};

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_BATCHER_HH
