#include "serving/cluster.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "stats/descriptive.hh"

namespace toltiers::serving {

using common::panic;

namespace {

enum class ExecState { Waiting, Running, Done, Cancelled };

/** One stage execution instance. */
struct Exec
{
    std::size_t job = 0;
    std::size_t stage = 0;
    std::size_t pool = 0;
    std::size_t attempt = 0;
    serving::FaultKind fault = serving::FaultKind::None;
    double serviceTime = 0.0;
    double enqueueTime = 0.0;
    double startTime = 0.0;
    ExecState state = ExecState::Waiting;
};

enum class EventKind { Arrival, Retry, Completion };

struct Event
{
    double time = 0.0;
    EventKind kind = EventKind::Completion;
    std::size_t index = 0; //!< Job id (arrival/retry) or exec id.
    std::size_t stage = 0;   //!< Retry only.
    std::size_t attempt = 0; //!< Retry only.

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        // Admit arrivals and retries before completions at the same
        // instant so a freed server sees the full queue.
        return kind == EventKind::Completion &&
               other.kind != EventKind::Completion;
    }
};

struct JobState
{
    const SimJob *spec = nullptr;
    std::size_t nextStage = 0;
    std::vector<std::size_t> execs; //!< Exec ids, dispatch order.
    bool responded = false;
    double responseTime = -1.0;
    double queueing = 0.0;
    double cost = 0.0;
    bool failed = false;
    bool corrupt = false;
    std::size_t retries = 0;
    bool legDead[2] = {false, false}; //!< Concurrent legs only.
};

struct PoolState
{
    std::size_t freeServers = 0;
    std::deque<std::size_t> waiting; //!< Exec ids.
    double busySeconds = 0.0;
    double cancelledBusySeconds = 0.0;
};

/** Pre-resolved per-pool metric handles (null when detached). */
struct PoolMetrics
{
    obs::Histogram *queueWait = nullptr;
    obs::Counter *busySeconds = nullptr;
    obs::Counter *cancelledBusySeconds = nullptr;
    obs::Counter *completedStages = nullptr;
    obs::Counter *cancelledStages = nullptr;
    obs::Counter *faultedStages = nullptr;
    obs::Counter *retries = nullptr;
    obs::Gauge *utilization = nullptr;
};

std::vector<PoolMetrics>
resolvePoolMetrics(obs::Registry *registry,
                   const std::vector<SimPool> &pools)
{
    std::vector<PoolMetrics> out(pools.size());
    if (!registry || !obs::metricsEnabled())
        return out;
    for (std::size_t p = 0; p < pools.size(); ++p) {
        obs::Labels labels = {{"pool", pools[p].name}};
        out[p].queueWait = &registry->histogram(
            "tt_sim_queue_wait_seconds", labels, {},
            "Time stages spend queued before a server frees up");
        out[p].busySeconds = &registry->counter(
            "tt_sim_busy_seconds_total", labels,
            "Billed busy node-seconds per pool");
        out[p].cancelledBusySeconds = &registry->counter(
            "tt_sim_cancelled_busy_seconds_total", labels,
            "Busy node-seconds billed to cancelled stages");
        out[p].completedStages = &registry->counter(
            "tt_sim_completed_stages_total", labels,
            "Stages run to completion per pool");
        out[p].cancelledStages = &registry->counter(
            "tt_sim_cancelled_stages_total", labels,
            "Stages cancelled by a raced winner per pool");
        out[p].faultedStages = &registry->counter(
            "tt_sim_faulted_stages_total", labels,
            "Stage executions struck by an injected fault");
        out[p].retries = &registry->counter(
            "tt_sim_retries_total", labels,
            "Stage re-executions after an injected fault");
        out[p].utilization = &registry->gauge(
            "tt_sim_pool_utilization", labels,
            "Busy fraction of the pool over the last run");
    }
    return out;
}

} // namespace

void
ClusterSim::attachMetrics(obs::Registry *registry)
{
    metrics_ = registry;
}

void
ClusterSim::setFaults(const SimFaultConfig &faults)
{
    TT_ASSERT(faults.backoffBaseSeconds >= 0.0 &&
                  faults.backoffMultiplier >= 1.0,
              "invalid sim retry backoff");
    faults_ = faults;
}

ClusterSim::ClusterSim(std::vector<SimPool> pools)
    : pools_(std::move(pools))
{
    TT_ASSERT(!pools_.empty(), "cluster needs at least one pool");
    for (const SimPool &p : pools_)
        TT_ASSERT(p.servers > 0, "pool '", p.name, "' has no servers");
}

const std::string &
ClusterSim::poolName(std::size_t pool) const
{
    TT_ASSERT(pool < pools_.size(), "pool index out of range");
    return pools_[pool].name;
}

std::size_t
ClusterSim::poolServers(std::size_t pool) const
{
    TT_ASSERT(pool < pools_.size(), "pool index out of range");
    return pools_[pool].servers;
}

void
ClusterSim::setPoolServers(std::size_t pool, std::size_t servers)
{
    TT_ASSERT(pool < pools_.size(), "pool index out of range");
    pools_[pool].servers = std::max<std::size_t>(servers, 1);
}

SimReport
ClusterSim::run(const std::vector<SimJob> &jobs) const
{
    std::vector<JobState> states(jobs.size());
    std::vector<PoolState> pool_states(pools_.size());
    for (std::size_t p = 0; p < pools_.size(); ++p)
        pool_states[p].freeServers = pools_[p].servers;

    std::vector<Exec> execs;
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    std::vector<PoolMetrics> pool_metrics =
        resolvePoolMetrics(metrics_, pools_);

    auto start_exec = [&](std::size_t e, double now) {
        Exec &x = execs[e];
        x.state = ExecState::Running;
        x.startTime = now;
        states[x.job].queueing += now - x.enqueueTime;
        if (pool_metrics[x.pool].queueWait)
            pool_metrics[x.pool].queueWait->observe(
                now - x.enqueueTime);
        events.push({now + x.serviceTime, EventKind::Completion, e});
    };

    auto enqueue = [&](std::size_t job, std::size_t stage,
                       double now, std::size_t attempt = 0) {
        const StageSpec &spec = jobs[job].stages[stage];
        TT_ASSERT(spec.pool < pools_.size(), "stage pool out of range");
        TT_ASSERT(spec.serviceTime >= 0.0,
                  "stage service time must be non-negative");
        Exec x;
        x.job = job;
        x.stage = stage;
        x.pool = spec.pool;
        x.attempt = attempt;
        x.serviceTime = spec.serviceTime;
        x.enqueueTime = now;
        if (faults_.schedule != nullptr) {
            // The deterministic draw for this (job, stage, attempt);
            // faults reshape the execution before it ever queues.
            x.fault = faults_.schedule->decide(job, stage, attempt);
            const FaultSpec &fs = faults_.schedule->spec();
            switch (x.fault) {
              case FaultKind::Failure:
                x.serviceTime *= fs.failureLatencyFraction;
                break;
              case FaultKind::Timeout:
                x.serviceTime = fs.timeoutLatencySeconds;
                break;
              case FaultKind::SlowDown:
                x.serviceTime *= fs.slowdownFactor;
                break;
              case FaultKind::None:
              case FaultKind::Corrupt:
                break;
            }
        }
        execs.push_back(x);
        std::size_t e = execs.size() - 1;
        states[job].execs.push_back(e);

        PoolState &ps = pool_states[spec.pool];
        if (ps.freeServers > 0) {
            --ps.freeServers;
            start_exec(e, now);
        } else {
            ps.waiting.push_back(e);
        }
    };

    auto release_server = [&](std::size_t pool, double now) {
        PoolState &ps = pool_states[pool];
        while (!ps.waiting.empty()) {
            std::size_t e = ps.waiting.front();
            ps.waiting.pop_front();
            if (execs[e].state == ExecState::Cancelled)
                continue;
            start_exec(e, now);
            return;
        }
        ++ps.freeServers;
    };

    auto bill = [&](const Exec &x, double busy) {
        pool_states[x.pool].busySeconds += busy;
        states[x.job].cost += busy * pools_[x.pool].pricePerSecond;
        if (pool_metrics[x.pool].busySeconds)
            pool_metrics[x.pool].busySeconds->inc(busy);
    };

    // Cancel every not-yet-responded stage of the job at `now`.
    auto cancel_outstanding = [&](std::size_t job, double now) {
        for (std::size_t e : states[job].execs) {
            Exec &x = execs[e];
            if (x.state == ExecState::Waiting) {
                x.state = ExecState::Cancelled; // Lazily dequeued.
            } else if (x.state == ExecState::Running) {
                x.state = ExecState::Cancelled;
                double busy = now - x.startTime;
                bill(x, busy);
                pool_states[x.pool].cancelledBusySeconds += busy;
                if (pool_metrics[x.pool].cancelledBusySeconds) {
                    pool_metrics[x.pool].cancelledBusySeconds->inc(
                        busy);
                    pool_metrics[x.pool].cancelledStages->inc();
                }
                release_server(x.pool, now);
            }
        }
    };

    // Seed the simulation with arrival events; a job only enters a
    // queue once its arrival time is reached.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        states[j].spec = &jobs[j];
        const SimJob &job = jobs[j];
        TT_ASSERT(!job.stages.empty(), "job without stages");
        if (job.concurrent) {
            TT_ASSERT(job.stages.size() == 2,
                      "concurrent jobs race exactly two stages");
        }
        events.push({job.arrival, EventKind::Arrival, j});
    }

    double makespan = 0.0;
    while (!events.empty()) {
        Event ev = events.top();
        events.pop();

        if (ev.kind == EventKind::Arrival) {
            std::size_t j = ev.index;
            const SimJob &job = jobs[j];
            if (job.concurrent) {
                enqueue(j, 0, ev.time);
                enqueue(j, 1, ev.time);
                states[j].nextStage = 2;
            } else {
                enqueue(j, 0, ev.time);
                states[j].nextStage = 1;
            }
            continue;
        }
        if (ev.kind == EventKind::Retry) {
            if (!states[ev.index].responded)
                enqueue(ev.index, ev.stage, ev.time, ev.attempt);
            continue;
        }

        Exec &x = execs[ev.index];
        if (x.state != ExecState::Running)
            continue; // Stale completion of a cancelled stage.

        // Copy out identifiers: enqueue() below grows the exec pool
        // and would invalidate the reference.
        const std::size_t job_id = x.job;
        const std::size_t stage = x.stage;
        const std::size_t attempt = x.attempt;
        const std::size_t pool = x.pool;
        const FaultKind fault = x.fault;

        double now = ev.time;
        makespan = std::max(makespan, now);
        x.state = ExecState::Done;
        bill(x, x.serviceTime);
        if (pool_metrics[pool].completedStages)
            pool_metrics[pool].completedStages->inc();
        if (fault != FaultKind::None &&
            pool_metrics[pool].faultedStages)
            pool_metrics[pool].faultedStages->inc();
        release_server(pool, now);

        JobState &js = states[job_id];
        const SimJob &job = jobs[job_id];
        if (js.responded)
            continue; // A raced loser finishing after the response.

        bool attempt_failed = fault == FaultKind::Failure ||
                              fault == FaultKind::Timeout;
        if (attempt_failed) {
            if (attempt < faults_.maxRetries) {
                // Re-execute the stage after exponential backoff;
                // the retry draws its own fault decision.
                double backoff =
                    faults_.backoffBaseSeconds *
                    std::pow(faults_.backoffMultiplier,
                             static_cast<double>(attempt));
                ++js.retries;
                if (pool_metrics[pool].retries)
                    pool_metrics[pool].retries->inc();
                events.push({now + backoff, EventKind::Retry,
                             job_id, stage, attempt + 1});
                continue;
            }
            // Stage exhausted. A raced job may still be saved by
            // its other leg; everything else fails loudly.
            if (job.concurrent) {
                js.legDead[stage] = true;
                bool authoritative_dead = js.legDead[1];
                bool both_dead = js.legDead[0] && js.legDead[1];
                if ((job.acceptFirst && !both_dead) ||
                    (!job.acceptFirst && !authoritative_dead))
                    continue; // The surviving leg can still answer.
            }
            js.responded = true;
            js.failed = true;
            js.responseTime = now - job.arrival;
            cancel_outstanding(job_id, now);
            continue;
        }

        if (job.concurrent) {
            bool authoritative = (stage == 1);
            if (job.acceptFirst || authoritative) {
                js.responded = true;
                js.responseTime = now - job.arrival;
                js.corrupt = fault == FaultKind::Corrupt;
                cancel_outstanding(job_id, now);
            }
        } else if (js.nextStage < job.stages.size()) {
            std::size_t next = js.nextStage;
            ++js.nextStage;
            // A corrupt intermediate stage poisons the chain.
            js.corrupt = js.corrupt || fault == FaultKind::Corrupt;
            enqueue(job_id, next, now);
        } else {
            js.responded = true;
            js.responseTime = now - job.arrival;
            js.corrupt = js.corrupt || fault == FaultKind::Corrupt;
        }
    }

    SimReport report;
    report.jobs.reserve(jobs.size());
    std::vector<double> responses;
    responses.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        TT_ASSERT(states[j].responded, "job ", j, " never responded");
        JobOutcome out;
        out.responseTime = states[j].responseTime;
        out.queueing = states[j].queueing;
        out.cost = states[j].cost;
        out.failed = states[j].failed;
        out.corrupt = states[j].corrupt;
        out.retries = states[j].retries;
        report.totalCost += out.cost;
        report.failedJobs += out.failed ? 1 : 0;
        report.corruptJobs += out.corrupt ? 1 : 0;
        report.totalRetries += out.retries;
        responses.push_back(out.responseTime);
        report.jobs.push_back(out);
    }
    report.makespan = makespan;
    for (std::size_t p = 0; p < pools_.size(); ++p) {
        report.poolBusySeconds.push_back(pool_states[p].busySeconds);
        report.poolCancelledBusySeconds.push_back(
            pool_states[p].cancelledBusySeconds);
        double denom =
            static_cast<double>(pools_[p].servers) * makespan;
        double utilization =
            denom > 0.0 ? pool_states[p].busySeconds / denom : 0.0;
        report.poolUtilization.push_back(utilization);
        if (pool_metrics[p].utilization)
            pool_metrics[p].utilization->set(utilization);
    }
    if (!responses.empty()) {
        report.meanResponse = stats::mean(responses);
        report.p99Response = stats::percentile(responses, 99.0);
    }
    return report;
}

std::vector<double>
poissonArrivals(std::size_t n, double rate, common::Pcg32 &rng)
{
    TT_ASSERT(rate > 0.0, "arrival rate must be positive");
    std::vector<double> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double u = std::max(rng.nextDouble(), 1e-12);
        t += -std::log(u) / rate;
        out.push_back(t);
    }
    return out;
}

} // namespace toltiers::serving
