#include "serving/cache.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace toltiers::serving {

namespace {

constexpr double kTolEps = 1e-12;

/** The registry handle for one tt_cache_* counter. */
obs::Counter &
cacheCounter(obs::Registry &reg, const char *name, const char *help)
{
    return reg.counter(name, {}, help);
}

} // namespace

CacheFingerprint
makeFingerprint(std::uint64_t input_hash, Objective objective,
                double tolerance_bucket)
{
    CacheFingerprint fp;
    fp.inputHash = mix64(input_hash);
    fp.objective = static_cast<std::uint32_t>(objective);
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(tolerance_bucket));
    std::memcpy(&bits, &tolerance_bucket, sizeof(bits));
    fp.toleranceBits = bits;
    return fp;
}

std::size_t
cacheEntryBytes(const CachedResult &result)
{
    // Key + doubles + list/map node overhead, then the payload. The
    // exact allocator numbers do not matter; what matters is that
    // the budget scales with what is actually stored.
    constexpr std::size_t kOverhead =
        sizeof(CacheFingerprint) + sizeof(CachedResult) + 64;
    return kOverhead + result.output.size();
}

ResultCache::ResultCache(CacheConfig cfg)
    : capacityBytes_(cfg.capacityBytes), ttlSeconds_(cfg.ttlSeconds),
      metrics_(cfg.metrics)
{
    TT_ASSERT(capacityBytes_ > 0,
              "result cache needs a positive byte budget");
    std::size_t shards = std::bit_ceil(
        cfg.shards == 0 ? std::size_t{1} : cfg.shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    shardBudget_ = std::max<std::size_t>(1, capacityBytes_ / shards);

    if (metrics_ != nullptr) {
        // Pre-register so an idle cache exports zeroed series.
        cacheCounter(*metrics_, "tt_cache_lookups_total",
                     "Result-cache lookups (hits + misses)");
        cacheCounter(*metrics_, "tt_cache_hits_total",
                     "Result-cache hits served");
        cacheCounter(*metrics_, "tt_cache_misses_total",
                     "Result-cache misses");
        cacheCounter(*metrics_, "tt_cache_tolerance_rejects_total",
                     "Misses caused by a stored tolerance bound "
                     "above the request's tolerance");
        cacheCounter(*metrics_, "tt_cache_insertions_total",
                     "Entries inserted into the result cache");
        cacheCounter(*metrics_, "tt_cache_evictions_total",
                     "Entries evicted by the byte budget");
        cacheCounter(*metrics_, "tt_cache_expired_total",
                     "Entries removed by TTL expiry");
        cacheCounter(*metrics_, "tt_cache_replacements_total",
                     "Entries overwritten by a re-insert");
        cacheCounter(*metrics_, "tt_cache_oversized_total",
                     "Inserts skipped because one entry exceeded "
                     "a whole shard's byte budget");
        metrics_->gauge("tt_cache_bytes", {},
                        "Resident result-cache bytes");
        metrics_->gauge("tt_cache_entries", {},
                        "Resident result-cache entries");
    }
}

ResultCache::Shard &
ResultCache::shardFor(const CacheFingerprint &key)
{
    // shards_.size() is a power of two, so the mask picks uniform
    // high-quality bits from the mixed hash.
    return *shards_[key.hash() & (shards_.size() - 1)];
}

bool
ResultCache::expired(const Entry &e, double now) const
{
    return ttlSeconds_ > 0.0 &&
           now - e.insertSeconds > ttlSeconds_;
}

bool
ResultCache::lookup(const CacheFingerprint &key,
                    double request_tolerance, CachedResult &out)
{
    lookups_.inc();
    if (metrics_ != nullptr)
        cacheCounter(*metrics_, "tt_cache_lookups_total", "").inc();

    Shard &shard = shardFor(key);
    double now = clock_.seconds();
    bool hit = false;
    bool tolerance_reject = false;
    bool expired_entry = false;
    {
        common::MutexLock lock(shard.mu);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            auto node = it->second;
            if (expired(*node, now)) {
                shard.bytes -= node->bytes;
                shard.map.erase(it);
                shard.lru.erase(node);
                expired_entry = true;
            } else if (node->result.tolerance >
                       request_tolerance + kTolEps) {
                // Entry exists but was produced under a *looser*
                // bound than this request demands — serving it
                // could weaken the guarantee. Leave it for the
                // looser tiers it is valid for.
                tolerance_reject = true;
            } else {
                out = node->result;
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 node); // Promote to MRU.
                hit = true;
            }
        }
    }

    if (hit) {
        hits_.inc();
        if (metrics_ != nullptr)
            cacheCounter(*metrics_, "tt_cache_hits_total", "").inc();
        return true;
    }
    misses_.inc();
    if (tolerance_reject)
        toleranceRejects_.inc();
    if (expired_entry)
        expirations_.inc();
    if (metrics_ != nullptr) {
        cacheCounter(*metrics_, "tt_cache_misses_total", "").inc();
        if (tolerance_reject) {
            cacheCounter(*metrics_,
                         "tt_cache_tolerance_rejects_total", "")
                .inc();
        }
        if (expired_entry) {
            cacheCounter(*metrics_, "tt_cache_expired_total", "")
                .inc();
            // Residency changed; the all-shard walk is only paid
            // when an expiry actually removed something.
            updateGauges();
        }
    }
    return false;
}

void
ResultCache::insert(const CacheFingerprint &key, CachedResult result)
{
    std::size_t bytes = cacheEntryBytes(result);
    if (bytes > shardBudget_) {
        oversized_.inc();
        if (metrics_ != nullptr)
            cacheCounter(*metrics_, "tt_cache_oversized_total", "")
                .inc();
        return;
    }

    Shard &shard = shardFor(key);
    double now = clock_.seconds();
    std::uint64_t evicted = 0;
    std::uint64_t expired_count = 0;
    bool replaced = false;
    {
        common::MutexLock lock(shard.mu);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            auto node = it->second;
            shard.bytes -= node->bytes;
            shard.lru.erase(node);
            shard.map.erase(it);
            replaced = true;
        }
        // Make room: drop expired entries opportunistically, then
        // least-recently-used ones until the new entry fits.
        while (!shard.lru.empty() &&
               shard.bytes + bytes > shardBudget_) {
            auto victim = std::prev(shard.lru.end());
            shard.bytes -= victim->bytes;
            shard.map.erase(victim->key);
            if (expired(*victim, now))
                ++expired_count;
            else
                ++evicted;
            shard.lru.erase(victim);
        }
        Entry e;
        e.key = key;
        e.result = std::move(result);
        e.bytes = bytes;
        e.insertSeconds = now;
        shard.lru.push_front(std::move(e));
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += bytes;
    }

    insertions_.inc();
    if (replaced)
        replacements_.inc();
    if (evicted > 0)
        evictions_.inc(static_cast<double>(evicted));
    if (expired_count > 0)
        expirations_.inc(static_cast<double>(expired_count));
    if (metrics_ != nullptr) {
        cacheCounter(*metrics_, "tt_cache_insertions_total", "")
            .inc();
        if (replaced) {
            cacheCounter(*metrics_, "tt_cache_replacements_total",
                         "")
                .inc();
        }
        if (evicted > 0) {
            cacheCounter(*metrics_, "tt_cache_evictions_total", "")
                .inc(static_cast<double>(evicted));
        }
        if (expired_count > 0) {
            cacheCounter(*metrics_, "tt_cache_expired_total", "")
                .inc(static_cast<double>(expired_count));
        }
        updateGauges();
    }
}

void
ResultCache::clear()
{
    for (auto &shard : shards_) {
        common::MutexLock lock(shard->mu);
        shard->lru.clear();
        shard->map.clear();
        shard->bytes = 0;
    }
    if (metrics_ != nullptr)
        updateGauges();
}

void
ResultCache::updateGauges() const
{
    std::size_t entries = 0;
    std::size_t bytes = 0;
    for (const auto &shard : shards_) {
        common::MutexLock lock(shard->mu);
        entries += shard->map.size();
        bytes += shard->bytes;
    }
    metrics_->gauge("tt_cache_bytes", {}, "")
        .set(static_cast<double>(bytes));
    metrics_->gauge("tt_cache_entries", {}, "")
        .set(static_cast<double>(entries));
}

CacheStats
ResultCache::stats() const
{
    auto count = [](const obs::Counter &c) {
        return static_cast<std::uint64_t>(c.value() + 0.5);
    };
    CacheStats s;
    s.lookups = count(lookups_);
    s.hits = count(hits_);
    s.misses = count(misses_);
    s.toleranceRejects = count(toleranceRejects_);
    s.insertions = count(insertions_);
    s.evictions = count(evictions_);
    s.expirations = count(expirations_);
    s.replacements = count(replacements_);
    s.oversized = count(oversized_);
    for (const auto &shard : shards_) {
        common::MutexLock lock(shard->mu);
        s.entries += shard->map.size();
        s.bytes += shard->bytes;
    }
    return s;
}

} // namespace toltiers::serving
