#include "serving/api.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::serving {

using common::fatal;

const char *
objectiveName(Objective obj)
{
    switch (obj) {
      case Objective::ResponseTime:
        return "response-time";
      case Objective::Cost:
        return "cost";
    }
    return "unknown";
}

bool
tryParseObjective(const std::string &name, Objective &out)
{
    std::string n = common::toLower(common::trim(name));
    if (n == "response-time" || n == "latency") {
        out = Objective::ResponseTime;
        return true;
    }
    if (n == "cost" || n == "invocation-cost") {
        out = Objective::Cost;
        return true;
    }
    return false;
}

Objective
parseObjective(const std::string &name)
{
    Objective obj = Objective::ResponseTime;
    if (!tryParseObjective(name, obj))
        fatal("unknown Objective header value: '", name, "'");
    return obj;
}

const char *
parseStatusName(ParseStatus status)
{
    switch (status) {
      case ParseStatus::Ok:
        return "ok";
      case ParseStatus::MalformedHeader:
        return "malformed-header";
      case ParseStatus::BadTolerance:
        return "bad-tolerance";
      case ParseStatus::BadObjective:
        return "bad-objective";
    }
    return "unknown";
}

RequestParse
parseAnnotatedRequest(const std::string &header_block)
{
    RequestParse out;
    ServiceRequest &req = out.request;
    auto reject = [&](ParseStatus status, std::string error) {
        out.status = status;
        out.error = std::move(error);
        // No half-parsed state escapes: a rejected request reads as
        // the (tightest) default annotation.
        out.request = ServiceRequest();
        return out;
    };

    for (const std::string &line : common::split(header_block, '\n')) {
        std::string t = common::trim(line);
        if (t.empty())
            continue;
        auto colon = t.find(':');
        if (colon == std::string::npos) {
            return reject(ParseStatus::MalformedHeader,
                          "malformed header line: '" + t + "'");
        }
        std::string name =
            common::toLower(common::trim(t.substr(0, colon)));
        std::string value = common::trim(t.substr(colon + 1));

        if (name == "tolerance") {
            char *end = nullptr;
            double tol = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                return reject(ParseStatus::BadTolerance,
                              "Tolerance header is not a number: '" +
                                  value + "'");
            }
            if (!(tol >= 0.0 && tol <= 1.0)) {
                return reject(ParseStatus::BadTolerance,
                              "Tolerance must lie in [0, 1], got '" +
                                  value + "'");
            }
            req.tier.tolerance = tol;
        } else if (name == "objective") {
            if (!tryParseObjective(value, req.tier.objective)) {
                return reject(ParseStatus::BadObjective,
                              "unknown Objective header value: '" +
                                  value + "'");
            }
        } else if (name == "tenant") {
            req.tenant = value;
        } else {
            req.headers[name] = value;
        }
    }
    return out;
}

std::string
formatAnnotation(const TierAnnotation &tier)
{
    return common::strprintf("Tolerance: %.4f\nObjective: %s\n",
                             tier.tolerance,
                             objectiveName(tier.objective));
}

} // namespace toltiers::serving
