#include "serving/api.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::serving {

using common::fatal;

const char *
objectiveName(Objective obj)
{
    switch (obj) {
      case Objective::ResponseTime:
        return "response-time";
      case Objective::Cost:
        return "cost";
    }
    return "unknown";
}

Objective
parseObjective(const std::string &name)
{
    std::string n = common::toLower(common::trim(name));
    if (n == "response-time" || n == "latency")
        return Objective::ResponseTime;
    if (n == "cost" || n == "invocation-cost")
        return Objective::Cost;
    fatal("unknown Objective header value: '", name, "'");
}

ServiceRequest
parseAnnotatedRequest(const std::string &header_block)
{
    ServiceRequest req;
    for (const std::string &line : common::split(header_block, '\n')) {
        std::string t = common::trim(line);
        if (t.empty())
            continue;
        auto colon = t.find(':');
        if (colon == std::string::npos)
            fatal("malformed header line: '", line, "'");
        std::string name =
            common::toLower(common::trim(t.substr(0, colon)));
        std::string value = common::trim(t.substr(colon + 1));

        if (name == "tolerance") {
            char *end = nullptr;
            double tol = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                fatal("Tolerance header is not a number: '", value,
                      "'");
            if (tol < 0.0 || tol > 1.0)
                fatal("Tolerance must lie in [0, 1], got ", tol);
            req.tier.tolerance = tol;
        } else if (name == "objective") {
            req.tier.objective = parseObjective(value);
        } else {
            req.headers[name] = value;
        }
    }
    return req;
}

std::string
formatAnnotation(const TierAnnotation &tier)
{
    return common::strprintf("Tolerance: %.4f\nObjective: %s\n",
                             tier.tolerance,
                             objectiveName(tier.objective));
}

} // namespace toltiers::serving
