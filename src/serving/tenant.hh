/**
 * @file
 * First-class multi-tenancy for the serving path: per-tenant token
 * buckets, weighted-fair (deficit round robin) dispatch, and exact
 * per-tenant accounting.
 *
 * A production tier service is shared by many tenants, and one
 * greedy tenant must not be able to starve the others' tiers or
 * silently void their guarantees ("No DNN Left Behind" motivates
 * exactly this layer). The pieces here are deliberately mechanism,
 * not policy:
 *
 *  - TokenBucket is a classic rate limiter on an *explicit* clock:
 *    every operation takes `now` in seconds, so the serving path
 *    can feed it a wall stopwatch while tests drive logical time
 *    and stay bit-for-bit deterministic.
 *  - TenantPolicy names the tenants and their quotas (admission
 *    rate, burst, and fair-share weight), with a default quota for
 *    tenants it has never heard of — including the anonymous
 *    tenant (the empty id, labelled "anonymous" in metrics).
 *  - TenantGovernor is the enforcement point the front door layers
 *    over its load-shedding gate: admit() charges the tenant's
 *    bucket, enqueue()/dequeue() run a deficit-round-robin queue so
 *    each backlogged tenant drains in proportion to its weight, and
 *    the counters keep the per-tenant conservation identity exact:
 *    submitted = rejected + shed + completed, mirrored into the
 *    registry as tt_tenant_* labelled series.
 *
 * Thread safety: TokenBucket and TenantPolicy are plain values (the
 * caller serializes); TenantGovernor is fully thread-safe.
 */

#ifndef TOLTIERS_SERVING_TENANT_HH
#define TOLTIERS_SERVING_TENANT_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.hh"
#include "obs/metrics.hh"

namespace toltiers::serving {

/** The metric/trace label for a tenant id ("" -> "anonymous"). */
std::string tenantMetricLabel(const std::string &tenant);

/**
 * Token-bucket rate limiter on an explicit clock. The bucket holds
 * at most `burst` tokens, refills continuously at `ratePerSecond`,
 * and admission takes one token. All methods take the current time
 * in seconds (any monotone origin); determinism is the caller's
 * clock choice, not this class's problem.
 */
class TokenBucket
{
  public:
    /** An unlimited bucket (every tryTake succeeds). */
    TokenBucket() = default;

    /**
     * @param rate_per_second refill rate; <= 0 means unlimited.
     * @param burst bucket capacity in tokens (clamped up to 1).
     */
    TokenBucket(double rate_per_second, double burst);

    /**
     * Take one token at time `now_seconds`; false when the bucket
     * is empty (the request is over quota). `now_seconds` must be
     * non-decreasing across calls (a regressing clock refills
     * nothing, it never underflows).
     */
    [[nodiscard]] bool tryTake(double now_seconds);

    /** Tokens available at `now_seconds` (burst for unlimited). */
    double tokens(double now_seconds) const;

    /** True when no rate was set (every tryTake succeeds). */
    bool unlimited() const { return rate_ <= 0.0; }

  private:
    /** Accrue refill up to `now_seconds` into tokens_. */
    void refill(double now_seconds);

    double rate_ = 0.0;   //!< Tokens per second; <= 0 = unlimited.
    double burst_ = 1.0;  //!< Capacity in tokens.
    double tokens_ = 1.0; //!< Available now (starts full).
    double last_ = 0.0;   //!< Clock of the last refill.
};

/** One tenant's admission quota and fair-share weight. */
struct TenantQuota
{
    /** Admitted requests per second (token-bucket refill rate);
     * <= 0 means unlimited — admission is then bounded only by the
     * front door's shared capacity gate. */
    double ratePerSecond = 0.0;
    /** Token-bucket capacity: the burst admitted instantly after an
     * idle period (clamped up to 1). */
    double burst = 16.0;
    /** Deficit-round-robin weight: a backlogged tenant drains in
     * proportion to this (clamped up to 0.01). */
    double weight = 1.0;
};

/**
 * The tenant table a front door enforces: named quotas plus the
 * default applied to any tenant not listed — which includes the
 * anonymous tenant (empty id) unless it is listed explicitly.
 */
struct TenantPolicy
{
    /** Quota for tenants absent from `tenants`. */
    TenantQuota defaults;
    /** Per-tenant overrides, keyed by tenant id ("" = anonymous). */
    std::map<std::string, TenantQuota> tenants;

    /** The quota governing `tenant` (defaults when unlisted). */
    const TenantQuota &quotaFor(const std::string &tenant) const;
};

/** Point-in-time accounting for one tenant (sums are exact once
 * traffic quiesces; see obs/metrics.hh on striped counters). */
struct TenantStats
{
    std::string tenant;  //!< Metric label ("anonymous" for "").
    std::uint64_t submitted = 0; //!< Offered to admission.
    std::uint64_t rejected = 0;  //!< Over the tenant's quota.
    std::uint64_t shed = 0;      //!< Lost to the shared capacity gate.
    std::uint64_t completed = 0; //!< Responses produced.
    std::uint64_t violations = 0; //!< Completed in guarantee violation.
    std::size_t queued = 0;      //!< Waiting in the fair queue now.
};

/**
 * Weighted-fair admission governor: token-bucket quota enforcement,
 * a deficit-round-robin work queue, and conservation-checked
 * per-tenant accounting (`submitted = rejected + shed + completed`
 * per tenant, exact after a drain). The front door is the intended
 * caller; see core/front_door.hh for the layering.
 *
 * The DRR queue holds opaque work items with an integer cost (a
 * single request costs 1, a batch its size). dequeue() serves the
 * backlogged tenants round robin, each accumulating quantum x
 * weight deficit per visit and paying an item's cost to release it
 * — so over any backlogged interval, tenant throughput converges to
 * the weight ratio and a flooding tenant only ever queues behind
 * itself.
 */
class TenantGovernor
{
  public:
    /**
     * @param policy quota table (copied).
     * @param metrics optional registry for the tt_tenant_* series;
     * must outlive the governor.
     */
    explicit TenantGovernor(const TenantPolicy &policy,
                            obs::Registry *metrics = nullptr);

    TenantGovernor(const TenantGovernor &) = delete;
    TenantGovernor &operator=(const TenantGovernor &) = delete;

    /**
     * Charge one admission against `tenant`'s bucket at time
     * `now_seconds`. Counts the tenant's submission; on false the
     * rejection is also counted (the request is over quota and must
     * not be enqueued).
     */
    [[nodiscard]] bool admit(const std::string &tenant,
                             double now_seconds);

    /** Count one admitted request lost to the shared capacity gate. */
    void countShed(const std::string &tenant);

    /** Count one produced response (and its violation verdict). */
    void countCompleted(const std::string &tenant, bool violation);

    /**
     * Queue one work item of the given cost (>= 1) for
     * weighted-fair dispatch. The item runs when a dequeue() caller
     * releases and invokes it; the governor never runs work itself.
     */
    void enqueue(const std::string &tenant, std::size_t cost,
                 std::function<void()> work);

    /**
     * Release the next work item per deficit round robin, or an
     * empty function when every queue is empty. The caller runs the
     * item outside the governor.
     */
    [[nodiscard]] std::function<void()> dequeue();

    /** Work items queued across all tenants right now. */
    std::size_t queuedCount() const;

    /** Per-tenant accounting, sorted by label. */
    std::vector<TenantStats> stats() const;

  private:
    /** One DRR queue entry. */
    struct Item
    {
        std::size_t cost = 1;
        std::function<void()> work;
    };

    /** Per-tenant bucket, queue, deficit, and tallies. */
    struct State
    {
        TenantQuota quota;
        TokenBucket bucket;
        std::deque<Item> queue;
        double deficit = 0.0;
        bool active = false; //!< Present in activeOrder_.
        std::uint64_t submitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t shed = 0;
        std::uint64_t completed = 0;
        std::uint64_t violations = 0;
        /** Registry handles (null without metrics). */
        obs::Counter *mSubmitted = nullptr;
        obs::Counter *mRejected = nullptr;
        obs::Counter *mShed = nullptr;
        obs::Counter *mCompleted = nullptr;
        obs::Counter *mViolations = nullptr;
        obs::Gauge *mQueued = nullptr;
    };

    /** The tenant's state, created (and its series registered) on
     * first use. */
    State &state(const std::string &tenant) REQUIRES(mu_);

    mutable common::Mutex mu_;
    std::map<std::string, State> tenants_ GUARDED_BY(mu_);
    /** Backlogged tenants in round-robin order. */
    std::deque<std::string> activeOrder_ GUARDED_BY(mu_);
    std::size_t queued_ GUARDED_BY(mu_) = 0;

    TenantPolicy policy_;
    obs::Registry *metrics_ = nullptr;
};

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_TENANT_HH
