/**
 * @file
 * Deployment descriptions: how many nodes of which instance type
 * back each service version, and helpers that turn a deployment plus
 * a measurement trace plus a routing policy into a queueing
 * simulation — the bridge between the closed-form tier analysis and
 * the discrete-event cluster model.
 */

#ifndef TOLTIERS_SERVING_DEPLOYMENT_HH
#define TOLTIERS_SERVING_DEPLOYMENT_HH

#include <string>
#include <vector>

#include "serving/cluster.hh"
#include "serving/instance.hh"

namespace toltiers::serving {

/** One version's node pool in a deployment. */
struct PoolSpec
{
    std::string versionName;
    std::size_t nodes = 1;
    InstanceType instance;
};

/** A cluster deployment: one pool per deployed version. */
class Deployment
{
  public:
    Deployment() = default;

    /** Add a pool; returns its pool index. */
    std::size_t addPool(PoolSpec spec);

    std::size_t poolCount() const { return pools_.size(); }

    const PoolSpec &pool(std::size_t idx) const;

    /** Pool index of a version name; fatal() if not deployed. */
    std::size_t poolFor(const std::string &version_name) const;

    /** Total nodes across pools. */
    std::size_t totalNodes() const;

    /** Dollars per hour to keep the whole deployment up. */
    double hourlyCost() const;

    /** Materialize the SimPool list for ClusterSim. */
    std::vector<SimPool> simPools() const;

  private:
    std::vector<PoolSpec> pools_;
};

/**
 * A homogeneous OSFA deployment: every node serves one version.
 */
Deployment osfaDeployment(const std::string &version_name,
                          std::size_t nodes,
                          const InstanceType &instance);

/**
 * A two-pool tiered deployment splitting a node budget between a
 * fast and an accurate version (fast pool gets `fast_nodes`).
 */
Deployment tieredDeployment(const std::string &fast_name,
                            std::size_t fast_nodes,
                            const std::string &accurate_name,
                            std::size_t accurate_nodes,
                            const InstanceType &instance);

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_DEPLOYMENT_HH
