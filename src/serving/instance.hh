/**
 * @file
 * IaaS instance catalog and cost model.
 *
 * Service versions are deployed on instance types that differ in
 * speed and in price per node-second, standing in for the IBM
 * Bluemix/IaaS pricing the paper bills invocations against. An
 * invocation's cost is the node-seconds it keeps busy times the
 * node's price, which is exactly the linear model the paper's cost
 * analysis uses.
 */

#ifndef TOLTIERS_SERVING_INSTANCE_HH
#define TOLTIERS_SERVING_INSTANCE_HH

#include <string>
#include <vector>

namespace toltiers::serving {

/** One IaaS machine type. */
struct InstanceType
{
    std::string name;
    double speedFactor = 1.0;     //!< Throughput relative to cpu-small.
    double pricePerHour = 0.10;   //!< Dollars per node-hour.

    /** Dollars per node-second. */
    double pricePerSecond() const { return pricePerHour / 3600.0; }

    /**
     * Latency of a job on this instance given its latency on the
     * reference (speedFactor 1.0) machine.
     */
    double
    latency(double reference_latency) const
    {
        return reference_latency / speedFactor;
    }

    /** Cost of keeping one node busy for the scaled latency. */
    double
    invocationCost(double reference_latency) const
    {
        return latency(reference_latency) * pricePerSecond();
    }
};

/** Catalog of the instance types used throughout the evaluation. */
class InstanceCatalog
{
  public:
    /** The default catalog: cpu-small, cpu-large, gpu. */
    InstanceCatalog();

    /** Look up by name; fatal() if unknown. */
    const InstanceType &get(const std::string &name) const;

    const std::vector<InstanceType> &all() const { return types_; }

  private:
    std::vector<InstanceType> types_;
};

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_INSTANCE_HH
