/**
 * @file
 * Service requests and tier annotations.
 *
 * A Tolerance Tier request (paper §IV-A) is an ordinary service
 * request annotated with two extra headers: `Tolerance` (acceptable
 * relative error degradation vs. the most accurate tier) and
 * `Objective` (what to optimize within that tolerance).
 */

#ifndef TOLTIERS_SERVING_REQUEST_HH
#define TOLTIERS_SERVING_REQUEST_HH

#include <cstddef>
#include <map>
#include <string>

namespace toltiers::serving {

/** What a tier should optimize once the tolerance is satisfied. */
enum class Objective { ResponseTime, Cost };

/** Printable objective name ("response-time" / "cost"). */
const char *objectiveName(Objective obj);

/** Parse an objective name; fatal() on unknown names. */
Objective parseObjective(const std::string &name);

/** The tier annotation carried by a request. */
struct TierAnnotation
{
    double tolerance = 0.0; //!< Relative error degradation bound.
    Objective objective = Objective::ResponseTime;
};

/** One service request. */
struct ServiceRequest
{
    std::size_t id = 0;
    std::size_t payload = 0; //!< Index into the bound workload.
    TierAnnotation tier;
    std::map<std::string, std::string> headers;
    /** Requesting tenant ("" = the anonymous default tenant, which
     * is labelled "anonymous" in metrics and governed by the
     * TenantPolicy's default quota like any other tenant). Carried
     * by the wire protocol and parsed from a `Tenant:` header; the
     * multi-tenant admission layer (ROADMAP item 1, now
     * implemented in serving/tenant.hh) keys token-bucket quotas,
     * weighted-fair dequeue, and the per-tenant tt_* label series
     * off it. */
    std::string tenant;
    /** Wall seconds the request queued in the adaptive batcher
     * before dispatch (0 when it never crossed a batcher). Set by
     * AdaptiveBatcher; consumed by the front door's stage
     * attribution (`tt_stage_seconds{stage="batch-wait"}` and the
     * trace's batch_wait span). */
    double batchWaitSeconds = 0.0;
};

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_REQUEST_HH
