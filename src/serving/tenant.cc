#include "serving/tenant.hh"

#include <algorithm>

namespace toltiers::serving {

namespace {

/** DRR quantum per round-robin visit at weight 1.0. */
constexpr double kQuantum = 1.0;

/** Floor for configured weights so a tenant always makes progress. */
constexpr double kMinWeight = 0.01;

} // namespace

std::string tenantMetricLabel(const std::string &tenant)
{
    return tenant.empty() ? std::string("anonymous") : tenant;
}

TokenBucket::TokenBucket(double rate_per_second, double burst)
    : rate_(rate_per_second), burst_(std::max(burst, 1.0)),
      tokens_(burst_)
{
}

void TokenBucket::refill(double now_seconds)
{
    if (now_seconds > last_)
    {
        tokens_ = std::min(burst_,
                           tokens_ + rate_ * (now_seconds - last_));
        last_ = now_seconds;
    }
}

bool TokenBucket::tryTake(double now_seconds)
{
    if (unlimited())
    {
        return true;
    }
    refill(now_seconds);
    if (tokens_ >= 1.0)
    {
        tokens_ -= 1.0;
        return true;
    }
    return false;
}

double TokenBucket::tokens(double now_seconds) const
{
    if (unlimited())
    {
        return burst_;
    }
    TokenBucket probe = *this;
    probe.refill(now_seconds);
    return probe.tokens_;
}

const TenantQuota &TenantPolicy::quotaFor(const std::string &tenant) const
{
    auto it = tenants.find(tenant);
    return it == tenants.end() ? defaults : it->second;
}

TenantGovernor::TenantGovernor(const TenantPolicy &policy,
                               obs::Registry *metrics)
    : policy_(policy), metrics_(metrics)
{
}

TenantGovernor::State &TenantGovernor::state(const std::string &tenant)
{
    auto it = tenants_.find(tenant);
    if (it != tenants_.end())
    {
        return it->second;
    }
    State fresh;
    fresh.quota = policy_.quotaFor(tenant);
    fresh.bucket =
        TokenBucket(fresh.quota.ratePerSecond, fresh.quota.burst);
    if (metrics_ != nullptr)
    {
        const obs::Labels labels = {{"tenant", tenantMetricLabel(tenant)}};
        fresh.mSubmitted = &metrics_->counter(
            "tt_tenant_submitted_total", labels,
            "Requests this tenant offered to front-door admission");
        fresh.mRejected = &metrics_->counter(
            "tt_tenant_rejected_total", labels,
            "Requests rejected because the tenant was over quota");
        fresh.mShed = &metrics_->counter(
            "tt_tenant_shed_total", labels,
            "Admitted requests lost to the shared capacity gate");
        fresh.mCompleted = &metrics_->counter(
            "tt_tenant_completed_total", labels,
            "Responses produced for this tenant");
        fresh.mViolations = &metrics_->counter(
            "tt_tenant_violations_total", labels,
            "Tenant responses that violated their tier guarantee");
        fresh.mQueued = &metrics_->gauge(
            "tt_tenant_queue_depth", labels,
            "Work items waiting in the tenant's fair queue");
    }
    return tenants_.emplace(tenant, std::move(fresh)).first->second;
}

bool TenantGovernor::admit(const std::string &tenant, double now_seconds)
{
    common::MutexLock lock(mu_);
    State &s = state(tenant);
    ++s.submitted;
    if (s.mSubmitted != nullptr)
    {
        s.mSubmitted->inc();
    }
    if (s.bucket.tryTake(now_seconds))
    {
        return true;
    }
    ++s.rejected;
    if (s.mRejected != nullptr)
    {
        s.mRejected->inc();
    }
    return false;
}

void TenantGovernor::countShed(const std::string &tenant)
{
    common::MutexLock lock(mu_);
    State &s = state(tenant);
    ++s.shed;
    if (s.mShed != nullptr)
    {
        s.mShed->inc();
    }
}

void TenantGovernor::countCompleted(const std::string &tenant,
                                    bool violation)
{
    common::MutexLock lock(mu_);
    State &s = state(tenant);
    ++s.completed;
    if (s.mCompleted != nullptr)
    {
        s.mCompleted->inc();
    }
    if (violation)
    {
        ++s.violations;
        if (s.mViolations != nullptr)
        {
            s.mViolations->inc();
        }
    }
}

void TenantGovernor::enqueue(const std::string &tenant, std::size_t cost,
                             std::function<void()> work)
{
    common::MutexLock lock(mu_);
    State &s = state(tenant);
    s.queue.push_back(Item{std::max<std::size_t>(cost, 1),
                           std::move(work)});
    ++queued_;
    if (s.mQueued != nullptr)
    {
        s.mQueued->set(static_cast<double>(s.queue.size()));
    }
    if (!s.active)
    {
        s.active = true;
        s.deficit = 0.0;
        activeOrder_.push_back(tenant);
    }
}

std::function<void()> TenantGovernor::dequeue()
{
    common::MutexLock lock(mu_);
    while (!activeOrder_.empty())
    {
        const std::string tenant = activeOrder_.front();
        State &s = state(tenant);
        if (s.queue.empty())
        {
            // Drained since activation; retire from the rotation.
            activeOrder_.pop_front();
            s.active = false;
            s.deficit = 0.0;
            continue;
        }
        const double cost = static_cast<double>(s.queue.front().cost);
        if (s.deficit < cost)
        {
            // One quantum per visit, then the next backlogged
            // tenant's turn — the rotation is what yields
            // weight-proportional throughput (a tenant that
            // re-credited itself at the head would monopolize the
            // queue). Deficits grow every visit, so the loop
            // terminates even for large batch costs.
            s.deficit += kQuantum * std::max(s.quota.weight, kMinWeight);
            activeOrder_.pop_front();
            activeOrder_.push_back(tenant);
            continue;
        }
        s.deficit -= cost;
        std::function<void()> work = std::move(s.queue.front().work);
        s.queue.pop_front();
        --queued_;
        if (s.mQueued != nullptr)
        {
            s.mQueued->set(static_cast<double>(s.queue.size()));
        }
        if (s.queue.empty())
        {
            activeOrder_.pop_front();
            s.active = false;
            s.deficit = 0.0;
        }
        return work;
    }
    return {};
}

std::size_t TenantGovernor::queuedCount() const
{
    common::MutexLock lock(mu_);
    return queued_;
}

std::vector<TenantStats> TenantGovernor::stats() const
{
    common::MutexLock lock(mu_);
    std::vector<TenantStats> out;
    out.reserve(tenants_.size());
    for (const auto &[tenant, s] : tenants_)
    {
        TenantStats row;
        row.tenant = tenantMetricLabel(tenant);
        row.submitted = s.submitted;
        row.rejected = s.rejected;
        row.shed = s.shed;
        row.completed = s.completed;
        row.violations = s.violations;
        row.queued = s.queue.size();
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const TenantStats &a, const TenantStats &b)
              { return a.tenant < b.tenant; });
    return out;
}

} // namespace toltiers::serving
