#include "serving/fault.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace toltiers::serving {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::Failure:
        return "failure";
      case FaultKind::Timeout:
        return "timeout";
      case FaultKind::SlowDown:
        return "slowdown";
      case FaultKind::Corrupt:
        return "corrupt";
    }
    return "unknown";
}

bool
FaultSpec::none() const
{
    return failureRate <= 0.0 && timeoutRate <= 0.0 &&
           slowdownRate <= 0.0 && corruptRate <= 0.0;
}

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

double
faultHash01(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
{
    std::uint64_t u = mix64(mix64(mix64(seed) ^ a) ^ b);
    return static_cast<double>(u >> 11) * 0x1.0p-53;
}

FaultSchedule::FaultSchedule(const FaultSpec &spec) : spec_(spec)
{
    double total = spec_.failureRate + spec_.timeoutRate +
                   spec_.slowdownRate + spec_.corruptRate;
    TT_ASSERT(spec_.failureRate >= 0.0 && spec_.timeoutRate >= 0.0 &&
                  spec_.slowdownRate >= 0.0 &&
                  spec_.corruptRate >= 0.0,
              "fault rates must be non-negative");
    TT_ASSERT(total <= 1.0 + 1e-12,
              "fault rates sum above 1: ", total);
    TT_ASSERT(spec_.slowdownFactor >= 1.0,
              "slowdown factor below 1");
    TT_ASSERT(spec_.failureLatencyFraction >= 0.0 &&
                  spec_.failureLatencyFraction <= 1.0,
              "failure latency fraction outside [0, 1]");
}

FaultKind
FaultSchedule::pick(double u) const
{
    double edge = spec_.failureRate;
    if (u < edge)
        return FaultKind::Failure;
    edge += spec_.timeoutRate;
    if (u < edge)
        return FaultKind::Timeout;
    edge += spec_.slowdownRate;
    if (u < edge)
        return FaultKind::SlowDown;
    edge += spec_.corruptRate;
    if (u < edge)
        return FaultKind::Corrupt;
    return FaultKind::None;
}

FaultKind
FaultSchedule::decide(std::uint64_t payload,
                      std::uint64_t attempt) const
{
    if (spec_.none())
        return FaultKind::None;
    return pick(faultHash01(spec_.seed, payload, attempt));
}

FaultKind
FaultSchedule::decide(std::uint64_t a, std::uint64_t b,
                      std::uint64_t attempt) const
{
    if (spec_.none())
        return FaultKind::None;
    return pick(faultHash01(spec_.seed, mix64(a) ^ b, attempt));
}

FaultyServiceVersion::FaultyServiceVersion(
    const ServiceVersion &inner, FaultSchedule schedule)
    : inner_(inner), schedule_(schedule)
{
}

const std::string &
FaultyServiceVersion::name() const
{
    return inner_.name();
}

const std::string &
FaultyServiceVersion::instanceName() const
{
    return inner_.instanceName();
}

std::size_t
FaultyServiceVersion::workloadSize() const
{
    return inner_.workloadSize();
}

std::uint64_t
FaultyServiceVersion::injectedCount(FaultKind kind) const
{
    return injected_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
}

VersionResult
FaultyServiceVersion::process(std::size_t index) const
{
    std::uint64_t attempt =
        autoAttempt_.fetch_add(1, std::memory_order_relaxed);
    return processAttempt(index, attempt).result;
}

AttemptResult
FaultyServiceVersion::processAttempt(std::size_t index,
                                     std::uint64_t attempt) const
{
    AttemptResult out{inner_.process(index), false};
    FaultKind fault = schedule_.decide(index, attempt);
    if (fault == FaultKind::None)
        return out;

    injected_[static_cast<std::size_t>(fault)].fetch_add(
        1, std::memory_order_relaxed);
#if TOLTIERS_OBS_ENABLED
    if (obs::metricsEnabled()) {
        obs::Registry::global()
            .counter("tt_faults_injected_total",
                     {{"version", inner_.name()},
                      {"kind", faultKindName(fault)}},
                     "Faults injected per wrapped version")
            .inc();
    }
#endif

    VersionResult &r = out.result;
    const FaultSpec &spec = schedule_.spec();
    switch (fault) {
      case FaultKind::Failure: {
        double frac = spec.failureLatencyFraction;
        r.latencySeconds *= frac;
        r.costDollars *= frac;
        r.output.clear();
        r.confidence = 0.0;
        r.error = 1.0;
        out.failed = true;
        break;
      }
      case FaultKind::Timeout: {
        // The backend hangs: latency becomes the hang time and the
        // bill scales with it — a caller without a deadline pays
        // the full wait, exactly as a real stuck RPC would charge.
        double scale = r.latencySeconds > 0.0
                           ? spec.timeoutLatencySeconds /
                                 r.latencySeconds
                           : 0.0;
        r.latencySeconds = spec.timeoutLatencySeconds;
        r.costDollars *= scale;
        break;
      }
      case FaultKind::SlowDown: {
        r.latencySeconds *= spec.slowdownFactor;
        r.costDollars *= spec.slowdownFactor;
        break;
      }
      case FaultKind::Corrupt: {
        std::reverse(r.output.begin(), r.output.end());
        r.output += " [corrupt]";
        r.error = 1.0;
        break;
      }
      case FaultKind::None:
        break;
    }
    return out;
}

} // namespace toltiers::serving
