/**
 * @file
 * Deterministic fault injection for service-version backends.
 *
 * The paper's guarantees assume every routed version answers; a
 * production deployment does not get that luxury — backends error
 * out, hang, straggle, and occasionally return garbage. The
 * FaultSchedule decides, from a seeded stateless hash over
 * (payload, attempt), which fault — if any — strikes a given
 * attempt, so a chaos run is bit-for-bit reproducible and a retry
 * of the same attempt number replays the same fault. The
 * FaultyServiceVersion wraps any ServiceVersion and applies the
 * schedule:
 *
 *  - Failure:  the backend errors after burning a fraction of its
 *              normal latency (reported via AttemptResult::failed);
 *  - Timeout:  the backend hangs — its latency becomes
 *              timeoutLatencySeconds; callers detect it via their
 *              own deadline, as real clients do;
 *  - SlowDown: a straggler — latency and cost scale by
 *              slowdownFactor, the result is fine;
 *  - Corrupt:  a silent wrong answer — the output is garbled and
 *              scored as fully wrong, but the attempt does not
 *              report failure (undetectable without ground truth).
 *
 * Decisions are stateless and thread-safe, so hedged duplicate
 * attempts can draw their faults concurrently.
 */

#ifndef TOLTIERS_SERVING_FAULT_HH
#define TOLTIERS_SERVING_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "serving/service_version.hh"

namespace toltiers::serving {

/** The failure modes the injector can impose on an attempt. */
enum class FaultKind { None, Failure, Timeout, SlowDown, Corrupt };

/** Printable fault-kind name ("none" / "failure" / ...). */
const char *faultKindName(FaultKind kind);

/** Fault mix and severity of one injected schedule. */
struct FaultSpec
{
    double failureRate = 0.0;  //!< P(explicit backend error).
    double timeoutRate = 0.0;  //!< P(hang until timeoutLatency).
    double slowdownRate = 0.0; //!< P(latency spike).
    double corruptRate = 0.0;  //!< P(silent wrong answer).

    double slowdownFactor = 4.0; //!< Latency multiplier of a spike.
    /** Apparent latency of a hung backend (seconds). */
    double timeoutLatencySeconds = 30.0;
    /** Fraction of normal latency a failing attempt burns before
     * erroring (billed). */
    double failureLatencyFraction = 0.1;

    std::uint64_t seed = 1; //!< Schedule seed.

    /** True when every rate is zero. */
    bool none() const;
};

/**
 * Uniform deviate in [0, 1) from a stateless 64-bit mix of
 * (seed, a, b) — the deterministic coin every fault and jitter
 * decision in the repo flips. splitmix64-based; thread-safe.
 */
double faultHash01(std::uint64_t seed, std::uint64_t a,
                   std::uint64_t b);

/**
 * A seeded, stateless fault plan: which fault strikes attempt
 * `attempt` at payload `payload`. Copyable; decisions depend only
 * on the spec.
 */
class FaultSchedule
{
  public:
    /** The empty schedule: never injects anything. */
    FaultSchedule() = default;

    explicit FaultSchedule(const FaultSpec &spec);

    /** Fault decision for one (payload, attempt) pair. */
    FaultKind decide(std::uint64_t payload,
                     std::uint64_t attempt) const;

    /** Fault decision keyed by three ids (job, stage, attempt). */
    FaultKind decide(std::uint64_t a, std::uint64_t b,
                     std::uint64_t attempt) const;

    const FaultSpec &spec() const { return spec_; }

  private:
    FaultKind pick(double u) const;

    FaultSpec spec_;
};

/**
 * A service version whose backend misbehaves on schedule. Wraps an
 * inner version; processAttempt applies the (payload, attempt)
 * fault decision to the inner result. The plain process() draws a
 * fresh attempt number per call so repeated unannotated calls see
 * the schedule's fault mix.
 */
class FaultyServiceVersion : public ServiceVersion
{
  public:
    /** Referents must outlive the wrapper. */
    FaultyServiceVersion(const ServiceVersion &inner,
                         FaultSchedule schedule);

    const std::string &name() const override;
    const std::string &instanceName() const override;
    std::size_t workloadSize() const override;

    VersionResult process(std::size_t index) const override;

    AttemptResult processAttempt(std::size_t index,
                                 std::uint64_t attempt)
        const override;

    const FaultSchedule &schedule() const { return schedule_; }

    /** Faults injected so far, by kind (None slot unused). */
    std::uint64_t injectedCount(FaultKind kind) const;

  private:
    const ServiceVersion &inner_;
    FaultSchedule schedule_;
    mutable std::atomic<std::uint64_t> autoAttempt_{0};
    mutable std::atomic<std::uint64_t> injected_[5] = {};
};

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_FAULT_HH
