/**
 * @file
 * Parsing of curl-style annotated requests, mirroring the paper's
 * §IV-A example:
 *
 *   curl --header Tolerance: 0.01
 *        --header Objective: response-time
 *        --data-binary @input-file-name
 *        -X POST http://cloud-service/compute
 *
 * We accept the equivalent raw HTTP-ish header block, one
 * "Name: value" per line.
 */

#ifndef TOLTIERS_SERVING_API_HH
#define TOLTIERS_SERVING_API_HH

#include <string>

#include "serving/request.hh"

namespace toltiers::serving {

/**
 * Parse a header block into a tier annotation. Unknown headers are
 * preserved in `request.headers`; missing Tolerance defaults to 0
 * (the most accurate tier) and missing Objective to response-time.
 * fatal() on malformed Tolerance values (non-numeric or outside
 * [0, 1]).
 */
ServiceRequest parseAnnotatedRequest(const std::string &header_block);

/** Render an annotation back to a header block. */
std::string formatAnnotation(const TierAnnotation &tier);

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_API_HH
