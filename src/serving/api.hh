/**
 * @file
 * Parsing of curl-style annotated requests, mirroring the paper's
 * §IV-A example:
 *
 *   curl --header Tolerance: 0.01
 *        --header Objective: response-time
 *        --data-binary @input-file-name
 *        -X POST http://cloud-service/compute
 *
 * We accept the equivalent raw HTTP-ish header block, one
 * "Name: value" per line. Parsing never terminates the process: a
 * malformed block comes back as an error status (a serving front
 * door must shed a bad request, not die on it).
 */

#ifndef TOLTIERS_SERVING_API_HH
#define TOLTIERS_SERVING_API_HH

#include <string>

#include "serving/request.hh"

namespace toltiers::serving {

/** Why a header block failed to parse. */
enum class ParseStatus
{
    Ok,              //!< Parsed cleanly; the request is usable.
    MalformedHeader, //!< A non-empty line without a colon.
    BadTolerance,    //!< Non-numeric or outside [0, 1].
    BadObjective,    //!< Unknown Objective value.
};

/** Printable status name ("ok" / "malformed-header" / ...). */
const char *parseStatusName(ParseStatus status);

/**
 * Result of parsing one annotated request. [[nodiscard]] at the
 * type level: dropping a parse status on the floor is exactly the
 * bug class ttlint's nodiscard-status rule exists to stop, and
 * this makes the compiler enforce it for by-value returns too.
 */
struct [[nodiscard]] RequestParse
{
    ServiceRequest request;  //!< Valid only when ok().
    ParseStatus status = ParseStatus::Ok;
    std::string error;       //!< Human-readable detail when !ok().

    /** True when parsing succeeded and `request` is usable. */
    bool ok() const { return status == ParseStatus::Ok; }
};

/**
 * Parse an objective name into `out`; returns false (leaving `out`
 * untouched) on unknown names.
 */
[[nodiscard]] bool tryParseObjective(const std::string &name,
                                     Objective &out);

/**
 * Parse a header block into a tier annotation. A `Tenant:` header
 * lands in `request.tenant`; other unknown headers are preserved
 * in `request.headers`; missing Tolerance defaults to 0 (the most
 * accurate tier) and missing Objective to response-time.
 * Malformed input is reported via the returned status — never
 * fatal; the partially parsed request is left as-is.
 */
RequestParse parseAnnotatedRequest(const std::string &header_block);

/** Render an annotation back to a header block. */
std::string formatAnnotation(const TierAnnotation &tier);

} // namespace toltiers::serving

#endif // TOLTIERS_SERVING_API_HH
