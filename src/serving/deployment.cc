#include "serving/deployment.hh"

#include "common/logging.hh"

namespace toltiers::serving {

using common::fatal;

std::size_t
Deployment::addPool(PoolSpec spec)
{
    TT_ASSERT(spec.nodes > 0, "pool needs at least one node");
    pools_.push_back(std::move(spec));
    return pools_.size() - 1;
}

const PoolSpec &
Deployment::pool(std::size_t idx) const
{
    TT_ASSERT(idx < pools_.size(), "pool index out of range");
    return pools_[idx];
}

std::size_t
Deployment::poolFor(const std::string &version_name) const
{
    for (std::size_t i = 0; i < pools_.size(); ++i) {
        if (pools_[i].versionName == version_name)
            return i;
    }
    fatal("version '", version_name, "' is not deployed");
}

std::size_t
Deployment::totalNodes() const
{
    std::size_t n = 0;
    for (const PoolSpec &p : pools_)
        n += p.nodes;
    return n;
}

double
Deployment::hourlyCost() const
{
    double c = 0.0;
    for (const PoolSpec &p : pools_)
        c += static_cast<double>(p.nodes) * p.instance.pricePerHour;
    return c;
}

std::vector<SimPool>
Deployment::simPools() const
{
    std::vector<SimPool> out;
    out.reserve(pools_.size());
    for (const PoolSpec &p : pools_) {
        out.push_back({p.versionName, p.nodes,
                       p.instance.pricePerSecond()});
    }
    return out;
}

Deployment
osfaDeployment(const std::string &version_name, std::size_t nodes,
               const InstanceType &instance)
{
    Deployment d;
    d.addPool({version_name, nodes, instance});
    return d;
}

Deployment
tieredDeployment(const std::string &fast_name, std::size_t fast_nodes,
                 const std::string &accurate_name,
                 std::size_t accurate_nodes,
                 const InstanceType &instance)
{
    Deployment d;
    d.addPool({fast_name, fast_nodes, instance});
    d.addPool({accurate_name, accurate_nodes, instance});
    return d;
}

} // namespace toltiers::serving
