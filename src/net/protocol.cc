#include "net/protocol.hh"

#include <bit>
#include <cmath>
#include <limits>

namespace toltiers::net {

namespace {

// ------------------------------------------------------- writing

void
putU8(Bytes &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(Bytes &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(Bytes &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
putU64(Bytes &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
putF64(Bytes &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

void
putBytes(Bytes &out, const std::string &s)
{
    out.insert(out.end(), s.begin(), s.end());
}

void
putStr16(Bytes &out, const std::string &s)
{
    putU16(out, static_cast<std::uint16_t>(s.size()));
    putBytes(out, s);
}

void
putStr32(Bytes &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    putBytes(out, s);
}

/** Prepend the frame header and append everything to `out`. */
void
emitFrame(Bytes &out, FrameType type, const Bytes &payload)
{
    putU32(out, static_cast<std::uint32_t>(kFixedHeaderBytes +
                                           payload.size()));
    putU8(out, kMagic0);
    putU8(out, kMagic1);
    putU8(out, kProtocolVersion);
    putU8(out, static_cast<std::uint8_t>(type));
    out.insert(out.end(), payload.begin(), payload.end());
}

// ------------------------------------------------------- reading

/** Bounds-checked little-endian reader over one frame's payload. */
struct Cursor
{
    const std::uint8_t *data;
    std::size_t len;
    std::size_t pos = 0;
    bool truncated = false;

    bool
    take(std::size_t n)
    {
        if (len - pos < n) {
            truncated = true;
            pos = len;
            return false;
        }
        return true;
    }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return data[pos++];
    }

    std::uint16_t
    u16()
    {
        if (!take(2))
            return 0;
        std::uint16_t v =
            static_cast<std::uint16_t>(data[pos]) |
            static_cast<std::uint16_t>(data[pos + 1]) << 8;
        pos += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str(std::size_t n)
    {
        if (!take(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return s;
    }

    std::string str16() { return str(u16()); }
    std::string str32() { return str(u32()); }
};

/** Tolerance domain check shared by both codec directions. */
bool
toleranceValid(double tol)
{
    return std::isfinite(tol) && tol >= 0.0 && tol <= 1.0;
}

CodecStatus
decodeRequestPayload(Cursor &c, serving::ServiceRequest &req)
{
    req.id = c.u64();
    req.payload = c.u64();
    double tolerance = c.f64();
    std::uint8_t objective = c.u8();
    std::uint8_t flags = c.u8();
    req.tenant = c.str16();
    std::uint16_t headers = c.u16();
    for (std::uint16_t i = 0; i < headers && !c.truncated; ++i) {
        std::string key = c.str16();
        std::string value = c.str16();
        if (!c.truncated)
            req.headers[key] = value;
    }
    if (c.truncated)
        return CodecStatus::Truncated;
    if (!toleranceValid(tolerance) || objective > 1 || flags != 0)
        return CodecStatus::BadValue;
    req.tier.tolerance = tolerance;
    req.tier.objective = objective == 0
                             ? serving::Objective::ResponseTime
                             : serving::Objective::Cost;
    return CodecStatus::Ok;
}

CodecStatus
decodeResponsePayload(Cursor &c, NetResponse &resp)
{
    resp.id = c.u64();
    std::uint8_t status = c.u8();
    std::uint8_t cached = c.u8();
    std::uint8_t escalated = c.u8();
    std::uint8_t reserved = c.u8();
    resp.latencySeconds = c.f64();
    resp.costDollars = c.f64();
    resp.confidence = c.f64();
    resp.ruleTolerance = c.f64();
    resp.traceId = c.u64();
    resp.output = c.str32();
    resp.statusNote = c.str32();
    if (c.truncated)
        return CodecStatus::Truncated;
    if (status > static_cast<std::uint8_t>(WireStatus::BadRequest) ||
        cached > 1 || escalated > 1 || reserved != 0)
        return CodecStatus::BadValue;
    resp.status = static_cast<WireStatus>(status);
    resp.servedFromCache = cached != 0;
    resp.escalated = escalated != 0;
    return CodecStatus::Ok;
}

} // namespace

const char *
wireStatusName(WireStatus status)
{
    switch (status) {
      case WireStatus::Ok:
        return "ok";
      case WireStatus::FellBack:
        return "fell-back";
      case WireStatus::GuaranteeViolation:
        return "violation";
      case WireStatus::Rejected:
        return "rejected";
      case WireStatus::BadRequest:
        return "bad-request";
    }
    return "unknown";
}

const char *
codecStatusName(CodecStatus status)
{
    switch (status) {
      case CodecStatus::Ok:
        return "ok";
      case CodecStatus::NeedMore:
        return "need-more";
      case CodecStatus::BadMagic:
        return "bad-magic";
      case CodecStatus::BadVersion:
        return "bad-version";
      case CodecStatus::BadType:
        return "bad-type";
      case CodecStatus::Truncated:
        return "truncated";
      case CodecStatus::TrailingBytes:
        return "trailing-bytes";
      case CodecStatus::Oversized:
        return "oversized";
      case CodecStatus::BadValue:
        return "bad-value";
      case CodecStatus::Closed:
        return "closed";
    }
    return "unknown";
}

CodecStatus
encodeRequestFrame(const serving::ServiceRequest &req, Bytes &out)
{
    constexpr std::size_t kU16Max =
        std::numeric_limits<std::uint16_t>::max();
    if (!toleranceValid(req.tier.tolerance))
        return CodecStatus::BadValue;
    if (req.tenant.size() > kU16Max ||
        req.headers.size() > kU16Max)
        return CodecStatus::Oversized;
    for (const auto &[key, value] : req.headers)
        if (key.size() > kU16Max || value.size() > kU16Max)
            return CodecStatus::Oversized;

    Bytes payload;
    putU64(payload, req.id);
    putU64(payload, static_cast<std::uint64_t>(req.payload));
    putF64(payload, req.tier.tolerance);
    putU8(payload,
          req.tier.objective == serving::Objective::ResponseTime
              ? 0
              : 1);
    putU8(payload, 0); // flags, reserved
    putStr16(payload, req.tenant);
    putU16(payload, static_cast<std::uint16_t>(req.headers.size()));
    for (const auto &[key, value] : req.headers) {
        putStr16(payload, key);
        putStr16(payload, value);
    }

    if (kLengthPrefixBytes + kFixedHeaderBytes + payload.size() >
        kMaxFrameBytes)
        return CodecStatus::Oversized;
    emitFrame(out, FrameType::Request, payload);
    return CodecStatus::Ok;
}

CodecStatus
encodeResponseFrame(const NetResponse &resp, Bytes &out)
{
    Bytes payload;
    putU64(payload, resp.id);
    putU8(payload, static_cast<std::uint8_t>(resp.status));
    putU8(payload, resp.servedFromCache ? 1 : 0);
    putU8(payload, resp.escalated ? 1 : 0);
    putU8(payload, 0); // reserved
    putF64(payload, resp.latencySeconds);
    putF64(payload, resp.costDollars);
    putF64(payload, resp.confidence);
    putF64(payload, resp.ruleTolerance);
    putU64(payload, resp.traceId);
    putStr32(payload, resp.output);
    putStr32(payload, resp.statusNote);

    if (kLengthPrefixBytes + kFixedHeaderBytes + payload.size() >
        kMaxFrameBytes)
        return CodecStatus::Oversized;
    emitFrame(out, FrameType::Response, payload);
    return CodecStatus::Ok;
}

FrameDecode
decodeFrame(const std::uint8_t *data, std::size_t len)
{
    FrameDecode out;
    if (len < kLengthPrefixBytes) {
        out.status = CodecStatus::NeedMore;
        return out;
    }
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i)
        body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);

    // A hostile length prefix must never drive buffering: refuse it
    // before waiting for the bytes it claims.
    if (kLengthPrefixBytes + static_cast<std::size_t>(body_len) >
        kMaxFrameBytes) {
        out.status = CodecStatus::Oversized;
        return out;
    }
    std::size_t total = kLengthPrefixBytes + body_len;
    if (len < total) {
        out.status = CodecStatus::NeedMore;
        return out;
    }

    out.frameBytes = total;
    if (body_len < kFixedHeaderBytes) {
        out.status = CodecStatus::Truncated;
        return out;
    }
    const std::uint8_t *p = data + kLengthPrefixBytes;
    if (p[0] != kMagic0 || p[1] != kMagic1) {
        // The stream is not speaking this protocol at all; the
        // claimed boundary is meaningless.
        out.frameBytes = 0;
        out.status = CodecStatus::BadMagic;
        return out;
    }
    if (p[2] != kProtocolVersion) {
        out.status = CodecStatus::BadVersion;
        return out;
    }
    std::uint8_t type = p[3];
    if (type != static_cast<std::uint8_t>(FrameType::Request) &&
        type != static_cast<std::uint8_t>(FrameType::Response)) {
        out.status = CodecStatus::BadType;
        return out;
    }
    out.type = static_cast<FrameType>(type);

    Cursor cursor{p + kFixedHeaderBytes,
                  body_len - kFixedHeaderBytes};
    out.status = out.type == FrameType::Request
                     ? decodeRequestPayload(cursor, out.request)
                     : decodeResponsePayload(cursor, out.response);
    if (out.status == CodecStatus::Ok && cursor.pos != cursor.len)
        out.status = CodecStatus::TrailingBytes;
    return out;
}

} // namespace toltiers::net
