/**
 * @file
 * The socket front end: a thread-per-connection TCP server that
 * speaks the toltiers wire protocol (net/protocol.hh) and feeds
 * every decoded request into the existing TierFrontDoor — so
 * bounded admission, batching, the result cache, tracing, and all
 * tt_frontdoor_* / tt_tier_* metrics apply to network requests
 * unchanged. The paper's tolerance tiers are a *service API*
 * contract; this is the layer that makes the contract reachable
 * from a wire instead of only in-process.
 *
 * Concurrency model: one acceptor thread blocks in accept(2); each
 * connection gets a reader thread that decodes frames and submits
 * them through TierFrontDoor::submitAsync. Responses are produced
 * on the door's work-stealing pool and written back from the
 * completion hook under a per-connection write mutex, so one
 * connection can pipeline many in-flight requests and responses
 * are framed back as they finish (tagged by the echoed request id
 * — ordering across in-flight requests is NOT guaranteed, by
 * design). A reader thread never waits for responses; a writer
 * never blocks the pool on another connection's socket.
 *
 * Accounting is conservation-checked, mirroring the front door:
 * every *accepted* request frame (well-formed, handed to the door)
 * is exactly one of
 *
 *     completed  — response produced and written to the socket
 *     rejected   — shed by the door's bounded admission (a
 *                  Rejected response frame is still written)
 *     aborted    — a response was owed but the connection died
 *                  before it could be written
 *
 * so tt_net_accepted_total = tt_net_completed_total +
 * tt_net_rejected_total + tt_net_aborted_total exactly once the
 * server has stopped (stop() joins every connection after its
 * in-flight requests drain). Malformed frames are counted
 * separately (tt_net_bad_frames_total) and answered with a
 * BadRequest response before the connection closes — framing
 * cannot be trusted past a malformed frame.
 *
 * Wire time is attributed like every other stage: the wall time a
 * request frame spent partially received (first byte to decode)
 * lands in tt_stage_seconds{stage="net-read"} and the response
 * write in tt_stage_seconds{stage="net-write"}, alongside byte and
 * connection counters.
 */

#ifndef TOLTIERS_NET_SERVER_HH
#define TOLTIERS_NET_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/stopwatch.hh"
#include "core/front_door.hh"
#include "net/protocol.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"

namespace toltiers::net {

/** Server construction parameters. */
struct ServerConfig
{
    /** Listen address (IPv4 dotted quad; default loopback). */
    std::string host = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /** accept(2) backlog. */
    int backlog = 64;
    /** Per-frame size bound (<= protocol kMaxFrameBytes). */
    std::size_t maxFrameBytes = kMaxFrameBytes;
    /** Optional registry for the tt_net_* series. */
    obs::Registry *metrics = nullptr;
};

/** Point-in-time server accounting (exact after stop()). */
struct ServerStats
{
    std::uint64_t connections = 0; //!< Connections ever accepted.
    std::uint64_t accepted = 0;  //!< Well-formed request frames.
    std::uint64_t completed = 0; //!< Responses written back.
    std::uint64_t rejected = 0;  //!< Shed by the bounded door.
    std::uint64_t aborted = 0;   //!< Owed but connection died.
    std::uint64_t badFrames = 0; //!< Malformed/oversized frames.
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
};

/** TCP front end over one TierFrontDoor. */
class TierServer
{
  public:
    /** The door (and everything behind it) must outlive the
     * server; the server must be stop()ped — or destroyed — before
     * the door drains away. */
    TierServer(core::TierFrontDoor &door, ServerConfig cfg);

    /** stop()s if still running. */
    ~TierServer();

    TierServer(const TierServer &) = delete;
    TierServer &operator=(const TierServer &) = delete;

    /**
     * Bind, listen, and start the acceptor thread. Returns false
     * with `err` set when the socket setup fails (the server is
     * then inert and may not be started again).
     */
    [[nodiscard]] bool start(std::string &err);

    /**
     * Close the listener, wake every connection, wait for their
     * in-flight requests to finish, and join all threads. After
     * stop() the accounting identities hold exactly. Idempotent.
     */
    void stop();

    /** The bound port (the ephemeral pick when cfg.port was 0). */
    std::uint16_t port() const { return port_; }

    /** True between a successful start() and stop(). */
    bool running() const;

    /** Point-in-time accounting snapshot. */
    ServerStats stats() const;

  private:
    /** Per-connection shared state; outlives the reader thread as
     * long as any completion hook still holds it. */
    struct Connection
    {
        ScopedFd fd;
        common::Mutex writeMu; //!< Serializes response frames.
        /** Set when a write failed; no further writes land. */
        bool writeBroken GUARDED_BY(writeMu) = false;
        common::Mutex mu;
        std::condition_variable cv;
        /** Requests handed to the door, response not yet settled. */
        std::size_t outstanding GUARDED_BY(mu) = 0;
    };

    void acceptLoop();
    void serveConnection(const std::shared_ptr<Connection> &conn);
    /** Decode-and-dispatch every complete frame at the head of
     * `buf`; returns false when the connection must close. */
    bool drainFrames(const std::shared_ptr<Connection> &conn,
                     Bytes &buf, common::Stopwatch &read_watch,
                     bool &watch_armed);
    void handleRequest(const std::shared_ptr<Connection> &conn,
                       serving::ServiceRequest request);
    /** Encode and write one response frame; returns false when the
     * connection's write side is broken. */
    bool writeResponse(const std::shared_ptr<Connection> &conn,
                      const NetResponse &resp);
    static NetResponse toWire(const core::TierResponse &resp,
                              std::uint64_t id);
    void recordStage(const char *stage_name, double seconds) const;
    void bumpCounter(const char *name, obs::Counter &local,
                     double delta = 1.0) const;

    core::TierFrontDoor &door_;
    ServerConfig cfg_;
    std::uint16_t port_ = 0;

    // listenFd_ is deliberately NOT guarded: stop() resets it only
    // after every thread that could touch it has been joined.
    ScopedFd listenFd_;
    std::thread acceptor_;
    mutable common::Mutex mu_;
    bool running_ GUARDED_BY(mu_) = false;
    std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(mu_);
    std::vector<std::thread> threads_ GUARDED_BY(mu_);

    // Striped hot tallies, mirrored into cfg_.metrics when
    // attached (same scheme as TierFrontDoor).
    obs::Counter connections_;
    obs::Counter accepted_;
    obs::Counter completed_;
    obs::Counter rejected_;
    obs::Counter aborted_;
    obs::Counter badFrames_;
    obs::Counter bytesRead_;
    obs::Counter bytesWritten_;
};

} // namespace toltiers::net

#endif // TOLTIERS_NET_SERVER_HH
