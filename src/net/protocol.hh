/**
 * @file
 * The toltiers wire protocol: compact length-prefixed binary frames
 * carrying the paper's Tolerance/Objective annotations (§IV-A) over
 * a byte stream.
 *
 * Frame layout (all integers little-endian, doubles as IEEE-754
 * bit patterns in a little-endian u64):
 *
 *     u32  bodyLen   bytes after this field (4 fixed + payload)
 *     u8   magic0    'T'
 *     u8   magic1    'N'
 *     u8   version   kProtocolVersion (1)
 *     u8   type      1 = request, 2 = response
 *     ...  payload   type-specific, bodyLen - 4 bytes
 *
 * Request payload:
 *
 *     u64  id               client-chosen request id (echoed back)
 *     u64  payload          index into the bound workload
 *     f64  tolerance        Tolerance annotation, in [0, 1]
 *     u8   objective        0 = response-time, 1 = cost
 *     u8   flags            reserved, must be 0
 *     str16 tenant          tenant id (multi-tenancy-ready)
 *     u16  headerCount      then per header: str16 key, str16 value
 *
 * Response payload:
 *
 *     u64  id               echo of the request id
 *     u8   status           WireStatus
 *     u8   servedFromCache  0/1
 *     u8   escalated        0/1
 *     u8   reserved         must be 0
 *     f64  latencySeconds   composed response latency
 *     f64  costDollars      composed invocation cost
 *     f64  confidence       chosen result's confidence
 *     f64  ruleTolerance    tolerance of the matched rule
 *     u64  traceId          span-tree id (0 when tracing is off)
 *     str32 output          result payload
 *     str32 statusNote      human-readable detail for non-Ok
 *
 * where strN is a uN byte length followed by that many raw bytes.
 *
 * Decoding never terminates the process: malformed, truncated,
 * oversized, or garbage input comes back as a CodecStatus (the same
 * contract as serving::parseAnnotatedRequest — a front door sheds a
 * bad frame, it does not die on one). Frames larger than
 * kMaxFrameBytes are refused on both the encode and decode side, so
 * a hostile length prefix can never drive an allocation.
 */

#ifndef TOLTIERS_NET_PROTOCOL_HH
#define TOLTIERS_NET_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serving/request.hh"

namespace toltiers::net {

/** Wire byte buffer. */
using Bytes = std::vector<std::uint8_t>;

inline constexpr std::uint8_t kMagic0 = 'T';
inline constexpr std::uint8_t kMagic1 = 'N';
inline constexpr std::uint8_t kProtocolVersion = 1;

/** Bytes of the u32 length prefix. */
inline constexpr std::size_t kLengthPrefixBytes = 4;
/** Fixed header bytes after the prefix (magic, version, type). */
inline constexpr std::size_t kFixedHeaderBytes = 4;

/**
 * Hard bound on one frame's total size (prefix included). Both
 * sides enforce it: encoders refuse to build a larger frame,
 * decoders refuse to believe a length prefix beyond it.
 */
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Frame kinds. */
enum class FrameType : std::uint8_t { Request = 1, Response = 2 };

/**
 * Response status on the wire: the three TierResponse outcomes plus
 * the two network-front-end-only outcomes (shed at the door, and
 * request frame refused before admission).
 */
enum class WireStatus : std::uint8_t
{
    Ok = 0,                 //!< Served by the matched ensemble.
    FellBack = 1,           //!< Served by a tolerance-safe fallback.
    GuaranteeViolation = 2, //!< Explicit guarantee violation.
    Rejected = 3,           //!< Shed by the bounded front door.
    BadRequest = 4,         //!< Malformed request payload.
};

/** Printable status name ("ok" / "fell-back" / ...). */
const char *wireStatusName(WireStatus status);

/** Why a codec operation did not produce a frame. */
enum class CodecStatus : std::uint8_t
{
    Ok,            //!< A complete frame was encoded/decoded.
    NeedMore,      //!< Buffer holds a frame prefix; read more.
    BadMagic,      //!< Frame does not start with 'T' 'N'.
    BadVersion,    //!< Protocol version mismatch.
    BadType,       //!< Unknown frame type byte.
    Truncated,     //!< Payload ends mid-field (bodyLen too small).
    TrailingBytes, //!< Payload longer than its fields (bodyLen too
                   //!< large).
    Oversized,     //!< Frame would exceed kMaxFrameBytes.
    BadValue,      //!< A field holds an out-of-domain value.
    Closed,        //!< Peer closed the connection (transport only).
};

/** Printable codec status name ("ok" / "need-more" / ...). */
const char *codecStatusName(CodecStatus status);

/** One response as carried on the wire. */
struct NetResponse
{
    std::uint64_t id = 0; //!< Echo of the request id.
    WireStatus status = WireStatus::Ok;
    bool servedFromCache = false;
    bool escalated = false;
    double latencySeconds = 0.0;
    double costDollars = 0.0;
    double confidence = 0.0;
    double ruleTolerance = 0.0;
    std::uint64_t traceId = 0;
    std::string output;
    std::string statusNote;
};

/**
 * Append one request frame for `req` to `out`. The request's
 * batchWaitSeconds is serving-side state and never crosses the
 * wire. Oversized (out untouched) when the tenant/header strings
 * would blow kMaxFrameBytes or a u16 string-length field; BadValue
 * when the tolerance is outside [0, 1] or not finite.
 */
[[nodiscard]] CodecStatus
encodeRequestFrame(const serving::ServiceRequest &req, Bytes &out);

/**
 * Append one response frame for `resp` to `out`. Oversized (out
 * untouched) when output/statusNote would blow kMaxFrameBytes.
 */
[[nodiscard]] CodecStatus encodeResponseFrame(const NetResponse &resp,
                                              Bytes &out);

/** Result of decoding the leading frame of a byte buffer. */
struct [[nodiscard]] FrameDecode
{
    CodecStatus status = CodecStatus::NeedMore;
    FrameType type = FrameType::Request;
    /** Bytes the frame occupies in the buffer — consumed on Ok,
     * and on any terminal error whose frame boundary was readable
     * (so a stream can skip a bad frame and resync); 0 when even
     * the boundary is unknown (NeedMore / Oversized / BadMagic). */
    std::size_t frameBytes = 0;
    serving::ServiceRequest request; //!< Valid when ok() & Request.
    NetResponse response;            //!< Valid when ok() & Response.

    /** True when a complete, valid frame was decoded. */
    bool ok() const { return status == CodecStatus::Ok; }
};

/**
 * Decode the first frame of `data[0..len)`. NeedMore when the
 * buffer holds only a frame prefix; any other non-Ok status means
 * the stream is unusable at this position (the server closes the
 * connection — after a malformed frame the boundary can lie, so
 * resynchronization is not attempted beyond a readable bodyLen).
 */
FrameDecode decodeFrame(const std::uint8_t *data, std::size_t len);

} // namespace toltiers::net

#endif // TOLTIERS_NET_PROTOCOL_HH
