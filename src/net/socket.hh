/**
 * @file
 * Thin POSIX TCP helpers for the network front end.
 *
 * Everything the server and client need from the socket API, and
 * nothing else: an RAII fd owner, loopback-friendly listen/connect,
 * and short-read/short-write-safe transfer loops. All functions
 * report failure through return values (never fatal) — a serving
 * front end treats every syscall error as an event to account, not
 * a reason to die. SIGPIPE is never raised: writes use
 * MSG_NOSIGNAL, so a peer hanging up mid-response surfaces as an
 * ordinary send error.
 */

#ifndef TOLTIERS_NET_SOCKET_HH
#define TOLTIERS_NET_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace toltiers::net {

/** Owns one file descriptor; closes it on destruction. */
class ScopedFd
{
  public:
    ScopedFd() = default;
    explicit ScopedFd(int fd) : fd_(fd) {}
    ~ScopedFd() { reset(); }

    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;

    ScopedFd(ScopedFd &&other) noexcept : fd_(other.release()) {}
    ScopedFd &
    operator=(ScopedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    /** The owned descriptor, or -1. */
    int get() const { return fd_; }

    /** True when a descriptor is owned. */
    bool valid() const { return fd_ >= 0; }

    /** Close the owned descriptor (if any) and adopt `fd`. */
    void reset(int fd = -1);

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/**
 * Create, bind, and listen a TCP socket on `host:port` (port 0
 * picks an ephemeral port). Returns the listening fd, or -1 with
 * `err` describing the failing call.
 */
int tcpListen(const std::string &host, std::uint16_t port,
              int backlog, std::string &err);

/**
 * Accept one connection on a listening fd (EINTR retried, low
 * TCP_NODELAY latency for the small response frames). Returns the
 * connected fd, or -1 with `err` set — including when the listener
 * was shut down out from under the call (the server-stop wakeup).
 */
int tcpAccept(int listen_fd, std::string &err);

/** Connect to `host:port`. Returns the fd, or -1 with `err` set. */
int tcpConnect(const std::string &host, std::uint16_t port,
               std::string &err);

/** The local port a bound socket ended up on (0 on error). */
std::uint16_t boundPort(int fd);

/**
 * Write all `len` bytes, looping over short writes (MSG_NOSIGNAL,
 * EINTR retried). Returns false on any unrecoverable send error.
 */
[[nodiscard]] bool sendAll(int fd, const void *data,
                           std::size_t len);

/**
 * One receive of up to `len` bytes (EINTR retried). Returns the
 * byte count, 0 on orderly shutdown, or -1 on error.
 */
long recvSome(int fd, void *data, std::size_t len);

/** shutdown(2) both directions, ignoring errors (wakeup helper). */
void shutdownBoth(int fd);

} // namespace toltiers::net

#endif // TOLTIERS_NET_SOCKET_HH
