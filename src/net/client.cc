#include "net/client.hh"

namespace toltiers::net {

namespace {

/** recv(2) chunk size for the response read loop. */
constexpr std::size_t kReadChunk = 16 * 1024;

} // namespace

bool
TierClient::connect(const std::string &host, std::uint16_t port,
                    std::string &err)
{
    close();
    int fd = tcpConnect(host, port, err);
    if (fd < 0)
        return false;
    fd_.reset(fd);
    return true;
}

void
TierClient::close()
{
    fd_.reset();
    buf_.clear();
}

CodecStatus
TierClient::send(const serving::ServiceRequest &req)
{
    if (!fd_.valid())
        return CodecStatus::Closed;
    Bytes frame;
    CodecStatus enc = encodeRequestFrame(req, frame);
    if (enc != CodecStatus::Ok)
        return enc;
    if (!sendAll(fd_.get(), frame.data(), frame.size())) {
        close();
        return CodecStatus::Closed;
    }
    return CodecStatus::Ok;
}

CodecStatus
TierClient::recv(NetResponse &out)
{
    if (!fd_.valid())
        return CodecStatus::Closed;
    std::uint8_t chunk[kReadChunk];
    for (;;) {
        FrameDecode frame = decodeFrame(buf_.data(), buf_.size());
        if (frame.ok() && frame.type == FrameType::Response) {
            out = frame.response;
            buf_.erase(buf_.begin(),
                       buf_.begin() + static_cast<std::ptrdiff_t>(
                                          frame.frameBytes));
            return CodecStatus::Ok;
        }
        if (frame.status != CodecStatus::NeedMore) {
            // A server speaking garbage (or request frames); the
            // stream is unusable.
            close();
            return frame.ok() ? CodecStatus::BadType : frame.status;
        }
        long n = recvSome(fd_.get(), chunk, sizeof(chunk));
        if (n <= 0) {
            close();
            return CodecStatus::Closed;
        }
        buf_.insert(buf_.end(), chunk, chunk + n);
    }
}

CodecStatus
TierClient::call(const serving::ServiceRequest &req, NetResponse &out)
{
    CodecStatus sent = send(req);
    if (sent != CodecStatus::Ok)
        return sent;
    return recv(out);
}

bool
TierClient::sendRaw(const void *data, std::size_t len)
{
    if (!fd_.valid())
        return false;
    if (!sendAll(fd_.get(), data, len)) {
        close();
        return false;
    }
    return true;
}

} // namespace toltiers::net
