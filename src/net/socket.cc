#include "net/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace toltiers::net {

namespace {

/** errno rendered as "call: message". */
std::string
sysError(const char *call)
{
    return std::string(call) + ": " + std::strerror(errno);
}

/** Parse a dotted-quad host into `addr`; false on bad input. */
bool
fillAddress(const std::string &host, std::uint16_t port,
            sockaddr_in &addr)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty() || host == "localhost") {
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        return true;
    }
    return inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

} // namespace

void
ScopedFd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

int
tcpListen(const std::string &host, std::uint16_t port, int backlog,
          std::string &err)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, addr)) {
        err = "bad listen address: '" + host + "'";
        return -1;
    }
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        err = sysError("socket");
        return -1;
    }
    int one = 1;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        err = sysError("bind");
        return -1;
    }
    if (::listen(fd.get(), backlog) != 0) {
        err = sysError("listen");
        return -1;
    }
    return fd.release();
}

int
tcpAccept(int listen_fd, std::string &err)
{
    int fd;
    do {
        fd = ::accept(listen_fd, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        err = sysError("accept");
        return -1;
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof one);
    return fd;
}

int
tcpConnect(const std::string &host, std::uint16_t port,
           std::string &err)
{
    sockaddr_in addr;
    if (!fillAddress(host, port, addr)) {
        err = "bad connect address: '" + host + "'";
        return -1;
    }
    ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        err = sysError("socket");
        return -1;
    }
    // Request/response frames are small; batching them behind
    // Nagle's algorithm would serialize a closed-loop client on
    // delayed ACKs.
    int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof one);
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        err = sysError("connect");
        return -1;
    }
    return fd.release();
}

std::uint16_t
boundPort(int fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

bool
sendAll(int fd, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::size_t sent = 0;
    while (sent < len) {
        long n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

long
recvSome(int fd, void *data, std::size_t len)
{
    long n;
    do {
        n = ::recv(fd, data, len, 0);
    } while (n < 0 && errno == EINTR);
    return n;
}

void
shutdownBoth(int fd)
{
    (void)::shutdown(fd, SHUT_RDWR);
}

} // namespace toltiers::net
