/**
 * @file
 * A self-contained demo serving stack behind the TCP front end —
 * what `ttserve` boots and what `ttload --self-serve` measures when
 * no external server is given. Everything is assembled from the
 * repo's real pieces (TierService, TierFrontDoor, TierServer);
 * nothing here is a mock. The two service versions burn genuine
 * CPU via a splitmix-style hash loop (the same technique as
 * bench::SpinVersion), so wall-clock numbers through the stack
 * measure the serving path, not a sleep.
 *
 * The demo tier table mirrors the paper's shape: a tolerance-0 rule
 * served by the accurate version, a middle tier served by a
 * sequential escalation ensemble (fast first, accurate when the
 * fast answer's confidence is low), and a loose tier served by the
 * fast version alone.
 */

#ifndef TOLTIERS_NET_DEMO_HH
#define TOLTIERS_NET_DEMO_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/front_door.hh"
#include "core/tier_service.hh"
#include "exec/pool.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "serving/service_version.hh"

namespace toltiers::net {

/**
 * Deterministic CPU-burning demo version: a hash loop whose trip
 * count models the version's latency (~10ns/iteration). Identical
 * payload index => identical output, so network-vs-in-process
 * golden checks can compare results byte for byte.
 */
class DemoVersion : public serving::ServiceVersion
{
  public:
    DemoVersion(std::string name, std::size_t spin_iters,
                double cost, double confidence,
                std::size_t workload);

    const std::string &name() const override { return name_; }
    const std::string &instanceName() const override
    {
        return instance_;
    }
    std::size_t workloadSize() const override { return workload_; }
    serving::VersionResult process(std::size_t index) const override;

  private:
    std::string name_;
    std::string instance_;
    std::size_t spinIters_;
    double cost_;
    double confidence_;
    std::size_t workload_;
};

/** Demo stack construction parameters. */
struct DemoStackConfig
{
    std::string host = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port. */
    std::uint16_t port = 0;
    /** Serving pool threads; 0 = exec::configuredThreadCount().
     * (1 also means a worker-less pool: requests are then served
     * inline on the connection reader threads — still concurrent
     * across connections.) */
    std::size_t serveThreads = 0;
    /** Front-door bounded-admission capacity. */
    std::size_t queueCapacity = 1024;
    /** Fast version's hash-loop trip count (~10ns each); the
     * accurate version spins 3x this. */
    std::size_t spinIters = 2000;
    /** Payload-index space of the bound workload. */
    std::size_t workloadSize = 64;
    /** Enforce weighted-fair multi-tenant admission at the door
     * (serving/tenant.hh). Off by default: the single-tenant stack
     * behaves exactly as before. */
    bool fairTenancy = false;
    /** Per-tenant admitted requests/second when fairTenancy is on;
     * <= 0 leaves tenants unlimited (fair queueing only). */
    double tenantRate = 0.0;
    /** Per-tenant token-bucket burst when fairTenancy is on. */
    double tenantBurst = 16.0;
};

/** Versions + rules + pool + door + server, wired and owned. */
class DemoStack
{
  public:
    explicit DemoStack(DemoStackConfig cfg = DemoStackConfig());
    ~DemoStack();

    DemoStack(const DemoStack &) = delete;
    DemoStack &operator=(const DemoStack &) = delete;

    /** Start the TCP front end; false with `err` set on failure. */
    [[nodiscard]] bool start(std::string &err);

    /** Stop the front end and drain the door. */
    void stop();

    /** The bound port (valid after start()). */
    std::uint16_t port() const;

    core::TierFrontDoor &door() { return *door_; }
    const core::TierService &service() const { return service_; }
    TierServer &server() { return *server_; }
    obs::Registry &metrics() { return registry_; }

  private:
    DemoStackConfig cfg_;
    DemoVersion fast_;
    DemoVersion accurate_;
    core::TierService service_;
    obs::Registry registry_;
    serving::TenantPolicy tenantPolicy_;
    exec::ThreadPool pool_;
    std::unique_ptr<core::TierFrontDoor> door_;
    std::unique_ptr<TierServer> server_;
};

} // namespace toltiers::net

#endif // TOLTIERS_NET_DEMO_HH
