/**
 * @file
 * Blocking wire-protocol client for the TCP front end.
 *
 * One TierClient owns one connection. call() is the closed-loop
 * primitive — send a request frame, block for its response — and is
 * what the load generator's client threads sit in. send()/recv()
 * are the split halves for callers that pipeline several in-flight
 * requests on one connection (responses then come back in
 * completion order, tagged by the echoed id, and the caller matches
 * them up). sendRaw() writes arbitrary bytes, so protocol tests can
 * push truncated or garbage frames at a live server and watch it
 * answer BadRequest instead of dying.
 *
 * Not thread-safe: one client per thread (the cheap and honest
 * model for a load generator — each simulated client is a real
 * connection with real syscalls).
 */

#ifndef TOLTIERS_NET_CLIENT_HH
#define TOLTIERS_NET_CLIENT_HH

#include <cstdint>
#include <string>

#include "net/protocol.hh"
#include "net/socket.hh"
#include "serving/request.hh"

namespace toltiers::net {

/** Blocking request/response client over one TCP connection. */
class TierClient
{
  public:
    TierClient() = default;
    ~TierClient() { close(); }

    TierClient(const TierClient &) = delete;
    TierClient &operator=(const TierClient &) = delete;

    /**
     * Connect to `host:port`. Returns false with `err` set on
     * failure; a failed client may retry connect().
     */
    [[nodiscard]] bool connect(const std::string &host,
                               std::uint16_t port,
                               std::string &err);

    /** Close the connection (idempotent). */
    void close();

    /** True while the connection is open. */
    bool connected() const { return fd_.valid(); }

    /**
     * Encode and send one request frame. Closed when the
     * connection is gone (or the peer hung up mid-write); encode
     * errors (Oversized / BadValue) pass through unchanged.
     */
    [[nodiscard]] CodecStatus send(const serving::ServiceRequest &req);

    /**
     * Block for the next response frame. Closed on orderly peer
     * shutdown or connection loss; any decode error means the
     * stream is unusable (the connection is closed).
     */
    [[nodiscard]] CodecStatus recv(NetResponse &out);

    /** send() then recv(): one closed-loop request. */
    [[nodiscard]] CodecStatus call(const serving::ServiceRequest &req,
                                   NetResponse &out);

    /** Ship raw bytes as-is (protocol fuzzing hook). */
    [[nodiscard]] bool sendRaw(const void *data, std::size_t len);

  private:
    ScopedFd fd_;
    Bytes buf_; //!< Unconsumed bytes read past the last frame.
};

} // namespace toltiers::net

#endif // TOLTIERS_NET_CLIENT_HH
