#include "net/demo.hh"

#include <algorithm>

#include "exec/parallel.hh"

namespace toltiers::net {

DemoVersion::DemoVersion(std::string name, std::size_t spin_iters,
                         double cost, double confidence,
                         std::size_t workload)
    : name_(std::move(name)), instance_("cpu-small"),
      spinIters_(spin_iters), cost_(cost), confidence_(confidence),
      workload_(workload)
{
}

serving::VersionResult
DemoVersion::process(std::size_t index) const
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull + index;
    for (std::size_t i = 0; i < spinIters_; ++i) {
        h ^= h >> 30;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 27;
    }
    serving::VersionResult r;
    r.output = name_ + "-answer-" + std::to_string(index) + "-" +
               std::to_string(h & 0xf);
    // Payload-dependent (but deterministic) confidence jitter in
    // [-0.08, +0.07], so the sequential middle tier's escalation
    // decision actually varies across the workload.
    double jitter =
        static_cast<double>((h >> 8) & 0xf) / 100.0 - 0.08;
    r.confidence = std::min(0.999, confidence_ + jitter);
    r.latencySeconds = 1e-8 * static_cast<double>(spinIters_);
    r.costDollars = cost_;
    r.error = 0.0;
    return r;
}

namespace {

core::RoutingRule
demoRule(double tolerance, core::EnsembleConfig cfg)
{
    core::RoutingRule rule;
    rule.tolerance = tolerance;
    rule.cfg = cfg;
    return rule;
}

std::vector<core::RoutingRule>
demoRules()
{
    core::EnsembleConfig accurate;
    accurate.kind = core::PolicyKind::Single;
    accurate.primary = 1;
    accurate.secondary = 1;

    core::EnsembleConfig escalating;
    escalating.kind = core::PolicyKind::Sequential;
    escalating.primary = 0;
    escalating.secondary = 1;
    escalating.confidenceThreshold = 0.9;

    core::EnsembleConfig fast;
    fast.kind = core::PolicyKind::Single;
    fast.primary = 0;
    fast.secondary = 0;

    return {demoRule(0.0, accurate), demoRule(0.02, escalating),
            demoRule(0.05, fast)};
}

} // namespace

DemoStack::DemoStack(DemoStackConfig cfg)
    : cfg_(cfg),
      fast_("demo-fast", cfg.spinIters, 1.0, 0.90,
            cfg.workloadSize),
      accurate_("demo-accurate", 3 * cfg.spinIters, 5.0, 0.99,
                cfg.workloadSize),
      service_({&fast_, &accurate_}),
      pool_(cfg.serveThreads == 0 ? exec::configuredThreadCount()
                                  : cfg.serveThreads)
{
    std::vector<core::RoutingRule> rules = demoRules();
    service_.setRules(serving::Objective::ResponseTime, rules);
    // The same table serves cost-objective requests, so a client
    // asking for either objective gets an answer, never a fatal.
    service_.setRules(serving::Objective::Cost, rules);
    service_.setVersionProfiles(
        {{0, 0.04, 1e-8 * static_cast<double>(cfg.spinIters), 1.0},
         {1, 0.0, 3e-8 * static_cast<double>(cfg.spinIters), 5.0}});

    core::FrontDoorConfig door_cfg;
    door_cfg.pool = &pool_;
    door_cfg.queueCapacity = cfg.queueCapacity;
    door_cfg.metrics = &registry_;
    if (cfg.fairTenancy) {
        tenantPolicy_.defaults.ratePerSecond = cfg.tenantRate;
        tenantPolicy_.defaults.burst = cfg.tenantBurst;
        door_cfg.tenantPolicy = &tenantPolicy_;
    }
    door_ = std::make_unique<core::TierFrontDoor>(service_,
                                                  door_cfg);

    ServerConfig server_cfg;
    server_cfg.host = cfg.host;
    server_cfg.port = cfg.port;
    server_cfg.metrics = &registry_;
    server_ = std::make_unique<TierServer>(*door_, server_cfg);
}

DemoStack::~DemoStack()
{
    stop();
}

bool
DemoStack::start(std::string &err)
{
    return server_->start(err);
}

void
DemoStack::stop()
{
    server_->stop();
    door_->drain();
}

std::uint16_t
DemoStack::port() const
{
    return server_->port();
}

} // namespace toltiers::net
