#include "net/server.hh"

#include <utility>

#include "common/logging.hh"
#include "obs/attribution.hh"

namespace toltiers::net {

namespace {

/** recv(2) chunk size for the connection read loop. */
constexpr std::size_t kReadChunk = 16 * 1024;

} // namespace

TierServer::TierServer(core::TierFrontDoor &door, ServerConfig cfg)
    : door_(door), cfg_(std::move(cfg))
{
    TT_ASSERT(cfg_.maxFrameBytes > 0,
              "server needs a positive frame bound");
    if (cfg_.maxFrameBytes > kMaxFrameBytes)
        cfg_.maxFrameBytes = kMaxFrameBytes;
    if (cfg_.metrics != nullptr) {
        // Pre-register the series so an idle server exports zeros.
        obs::Registry &reg = *cfg_.metrics;
        reg.counter("tt_net_connections_total", {},
                    "Connections accepted by the TCP front end");
        reg.counter("tt_net_accepted_total", {},
                    "Well-formed request frames handed to the "
                    "front door");
        reg.counter("tt_net_completed_total", {},
                    "Response frames written back to clients");
        reg.counter("tt_net_rejected_total", {},
                    "Request frames shed by the bounded front door");
        reg.counter("tt_net_aborted_total", {},
                    "Requests owed a response when their "
                    "connection died");
        reg.counter("tt_net_bad_frames_total", {},
                    "Malformed, truncated, or oversized frames");
        reg.counter("tt_net_bytes_read_total", {},
                    "Bytes read off client sockets");
        reg.counter("tt_net_bytes_written_total", {},
                    "Bytes written to client sockets");
        reg.histogram("tt_stage_seconds",
                      {{"stage", obs::stage::kNetRead}},
                      obs::stageSecondsBounds(),
                      "Per-stage share of request wall time");
        reg.histogram("tt_stage_seconds",
                      {{"stage", obs::stage::kNetWrite}},
                      obs::stageSecondsBounds(),
                      "Per-stage share of request wall time");
    }
}

TierServer::~TierServer()
{
    stop();
}

bool
TierServer::start(std::string &err)
{
    common::MutexLock lock(mu_);
    if (running_) {
        err = "server is already running";
        return false;
    }
    int fd = tcpListen(cfg_.host, cfg_.port, cfg_.backlog, err);
    if (fd < 0)
        return false;
    listenFd_.reset(fd);
    port_ = boundPort(fd);
    if (port_ == 0) {
        listenFd_.reset();
        err = "could not read the bound port";
        return false;
    }
    running_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
TierServer::stop()
{
    std::vector<std::shared_ptr<Connection>> conns;
    std::vector<std::thread> threads;
    {
        common::MutexLock lock(mu_);
        if (!running_)
            return;
        running_ = false;
        // Shutting the listener down pops the acceptor out of
        // accept(2); shutting each connection down pops its reader
        // out of recv(2). The reader then drains in-flight
        // completions before its thread exits (see
        // serveConnection). The fds close only after the joins —
        // close-before-join would let the kernel reuse the fd
        // number under a thread still blocked on it.
        if (listenFd_.valid())
            shutdownBoth(listenFd_.get());
        for (const auto &conn : conns_)
            shutdownBoth(conn->fd.get());
        conns.swap(conns_);
        threads.swap(threads_);
    }
    if (acceptor_.joinable())
        acceptor_.join();
    for (std::thread &t : threads)
        t.join();
    listenFd_.reset();
}

bool
TierServer::running() const
{
    common::MutexLock lock(mu_);
    return running_;
}

ServerStats
TierServer::stats() const
{
    ServerStats s;
    s.connections =
        static_cast<std::uint64_t>(connections_.value());
    s.accepted = static_cast<std::uint64_t>(accepted_.value());
    s.completed = static_cast<std::uint64_t>(completed_.value());
    s.rejected = static_cast<std::uint64_t>(rejected_.value());
    s.aborted = static_cast<std::uint64_t>(aborted_.value());
    s.badFrames = static_cast<std::uint64_t>(badFrames_.value());
    s.bytesRead = static_cast<std::uint64_t>(bytesRead_.value());
    s.bytesWritten =
        static_cast<std::uint64_t>(bytesWritten_.value());
    return s;
}

void
TierServer::acceptLoop()
{
    for (;;) {
        std::string err;
        int fd = -1;
        {
            common::MutexLock lock(mu_);
            if (!running_)
                return;
            fd = listenFd_.get();
        }
        int client = tcpAccept(fd, err);
        if (client < 0) {
            // accept(2) fails exactly when stop() tore the
            // listener down (or the fd is truly broken); either
            // way the acceptor is done.
            return;
        }
        auto conn = std::make_shared<Connection>();
        conn->fd.reset(client);
        bumpCounter("tt_net_connections_total", connections_);
        common::MutexLock lock(mu_);
        if (!running_) {
            // Raced with stop(): refuse the connection rather than
            // leak a thread stop() will never join.
            shutdownBoth(client);
            return;
        }
        conns_.push_back(conn);
        threads_.emplace_back(
            [this, conn] { serveConnection(conn); });
    }
}

void
TierServer::serveConnection(const std::shared_ptr<Connection> &conn)
{
    Bytes buf;
    std::uint8_t chunk[kReadChunk];
    // Arms when the buffer holds a partial frame, so the recorded
    // net-read time is genuine wire wait (first byte to decode),
    // not client think time between requests.
    common::Stopwatch readWatch;
    bool watchArmed = false;

    for (;;) {
        long n = recvSome(conn->fd.get(), chunk, sizeof(chunk));
        if (n <= 0)
            break; // Peer closed, stop() shut us down, or error.
        bumpCounter("tt_net_bytes_read_total", bytesRead_,
                    static_cast<double>(n));
        buf.insert(buf.end(), chunk, chunk + n);
        if (!drainFrames(conn, buf, readWatch, watchArmed))
            break;
    }

    // The reader is done; wait for every in-flight completion hook
    // so the accounting below sees a settled connection and the fd
    // stays open for any response still being written.
    {
        common::UniqueLock lock(conn->mu);
        while (conn->outstanding != 0)
            conn->cv.wait(lock.native());
    }
    // Anything still buffered is a frame the client never finished;
    // it was never accepted, so it owes nothing to conservation.
    shutdownBoth(conn->fd.get());
}

bool
TierServer::drainFrames(const std::shared_ptr<Connection> &conn,
                        Bytes &buf, common::Stopwatch &read_watch,
                        bool &watch_armed)
{
    std::size_t consumed = 0;
    bool keep = true;
    while (keep) {
        FrameDecode frame =
            decodeFrame(buf.data() + consumed,
                        buf.size() - consumed);
        if (frame.status == CodecStatus::NeedMore) {
            if (buf.size() > consumed && !watch_armed) {
                read_watch = common::Stopwatch();
                watch_armed = true;
            }
            break;
        }
        if (watch_armed) {
            recordStage(obs::stage::kNetRead,
                        read_watch.seconds());
            watch_armed = false;
        }
        if (frame.status == CodecStatus::Ok &&
            frame.type == FrameType::Request &&
            frame.frameBytes <= cfg_.maxFrameBytes) {
            consumed += frame.frameBytes;
            handleRequest(conn, std::move(frame.request));
            continue;
        }
        // Malformed, oversized (by the wire bound or by this
        // server's tighter cfg bound), or a frame type the server
        // does not take. Framing cannot be trusted past this point:
        // answer BadRequest and close.
        bumpCounter("tt_net_bad_frames_total", badFrames_);
        NetResponse resp;
        resp.id = 0; // The id is unknowable from a bad frame.
        resp.status = WireStatus::BadRequest;
        resp.statusNote = codecStatusName(frame.status);
        if (frame.status == CodecStatus::Ok)
            resp.statusNote = "unacceptable frame";
        (void)writeResponse(conn, resp);
        keep = false;
    }
    if (consumed > 0)
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(consumed));
    return keep;
}

void
TierServer::handleRequest(const std::shared_ptr<Connection> &conn,
                          serving::ServiceRequest request)
{
    bumpCounter("tt_net_accepted_total", accepted_);
    const std::uint64_t id = request.id;
    {
        common::MutexLock lock(conn->mu);
        ++conn->outstanding;
    }
    auto settle = [this, conn](const char *name,
                               obs::Counter &local) {
        bumpCounter(name, local);
        common::MutexLock lock(conn->mu);
        if (--conn->outstanding == 0)
            conn->cv.notify_all();
    };
    bool admitted = door_.submitAsync(
        std::move(request),
        [this, conn, id, settle](const core::TierResponse &r) {
            if (writeResponse(conn, toWire(r, id)))
                settle("tt_net_completed_total", completed_);
            else
                settle("tt_net_aborted_total", aborted_);
        });
    if (!admitted) {
        // Shed by the bounded door. The client still gets a frame
        // saying so — shedding is an answer, not silence. The shed
        // is counted rejected regardless of whether the write
        // lands (the reject happened either way).
        NetResponse resp;
        resp.id = id;
        resp.status = WireStatus::Rejected;
        resp.statusNote = "shed by bounded admission";
        (void)writeResponse(conn, resp);
        settle("tt_net_rejected_total", rejected_);
    }
}

bool
TierServer::writeResponse(const std::shared_ptr<Connection> &conn,
                          const NetResponse &resp)
{
    Bytes frame;
    CodecStatus enc = encodeResponseFrame(resp, frame);
    if (enc != CodecStatus::Ok) {
        // A service output too large for one frame. The client is
        // still owed an answer: strip the oversized strings and
        // say what happened instead of dying or going silent.
        NetResponse trimmed = resp;
        trimmed.output.clear();
        trimmed.statusNote = "response exceeded the frame bound";
        enc = encodeResponseFrame(trimmed, frame);
        TT_ASSERT(enc == CodecStatus::Ok,
                  "a trimmed response must always encode");
    }
    common::Stopwatch writeWatch;
    common::MutexLock lock(conn->writeMu);
    if (conn->writeBroken)
        return false;
    if (!sendAll(conn->fd.get(), frame.data(), frame.size())) {
        conn->writeBroken = true;
        return false;
    }
    bumpCounter("tt_net_bytes_written_total", bytesWritten_,
                static_cast<double>(frame.size()));
    recordStage(obs::stage::kNetWrite, writeWatch.seconds());
    return true;
}

NetResponse
TierServer::toWire(const core::TierResponse &resp, std::uint64_t id)
{
    NetResponse out;
    out.id = id;
    switch (resp.status) {
      case core::ServeStatus::Ok:
        out.status = WireStatus::Ok;
        break;
      case core::ServeStatus::FellBack:
        out.status = WireStatus::FellBack;
        break;
      case core::ServeStatus::GuaranteeViolation:
        out.status = WireStatus::GuaranteeViolation;
        break;
    }
    out.servedFromCache = resp.servedFromCache;
    out.escalated = resp.escalated;
    out.latencySeconds = resp.latencySeconds;
    out.costDollars = resp.costDollars;
    out.confidence = resp.confidence;
    out.ruleTolerance = resp.ruleTolerance;
    out.traceId = resp.traceId;
    out.output = resp.output;
    out.statusNote = resp.statusNote;
    return out;
}

void
TierServer::recordStage(const char *stage_name,
                        double seconds) const
{
    if (cfg_.metrics != nullptr)
        obs::recordStageSeconds(*cfg_.metrics, stage_name, seconds);
}

void
TierServer::bumpCounter(const char *name, obs::Counter &local,
                        double delta) const
{
    local.inc(delta);
    if (cfg_.metrics != nullptr)
        cfg_.metrics->counter(name).inc(delta);
}

} // namespace toltiers::net
