/**
 * @file
 * Metrics exporters: Prometheus text exposition, JSON, and CSV
 * renderings of a registry snapshot.
 *
 * The Prometheus format follows the text exposition conventions
 * (HELP/TYPE comments, `_bucket{le=...}` cumulative buckets,
 * `_sum`/`_count` series, label values escaped per the exposition
 * rules) so the snapshot can be scraped or fed to promtool
 * unchanged. JSON and CSV carry the same data plus the estimated
 * p50/p95/p99 for histograms, for humans and spreadsheets.
 *
 * Metric naming: every series the project records uses the `tt_`
 * prefix. Earlier releases mixed in `toltiers_*` names; those are
 * kept for one release as export-time aliases — pass
 * `legacy_aliases = true` to exportPrometheus to emit each renamed
 * family a second time under its old name (see
 * legacyMetricAliases() for the table, and docs/OPERATIONS.md for
 * the deprecation schedule).
 */

#ifndef TOLTIERS_OBS_EXPORT_HH
#define TOLTIERS_OBS_EXPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"

namespace toltiers::common {
class CliArgs;
} // namespace toltiers::common

namespace toltiers::obs {

/** Prometheus text exposition of the registry's current state.
 * With `legacy_aliases`, every family in legacyMetricAliases() is
 * additionally emitted under its deprecated `toltiers_*` name. */
void exportPrometheus(const Registry &registry, std::ostream &os,
                      bool legacy_aliases = false);

/** Escape one label value for the Prometheus text exposition
 * format: backslash, double quote, and newline. */
std::string escapePrometheusLabelValue(const std::string &value);

/** The rename table, (current tt_* name, deprecated toltiers_*
 * name) pairs — kept as export-time aliases for one release. */
const std::vector<std::pair<std::string, std::string>> &
legacyMetricAliases();

/** JSON object with one entry per series. */
void exportJson(const Registry &registry, std::ostream &os);

/** Long-format CSV: one row per series. */
void exportCsv(const Registry &registry, std::ostream &os);

/**
 * Write a snapshot to `path`, picking the format from the
 * extension: .json -> JSON, .csv -> CSV, anything else (.prom,
 * .txt, ...) -> Prometheus text. `legacy_aliases` applies to the
 * Prometheus format only. fatal() if the file cannot be opened.
 */
void writeSnapshot(const Registry &registry, const std::string &path,
                   bool legacy_aliases = false);

/**
 * Standard CLI wiring: if the parsed args carry --metrics-out=PATH,
 * write a snapshot there (see writeSnapshot) and inform() about it;
 * --metrics-legacy-aliases additionally emits the deprecated
 * toltiers_* names in Prometheus output. Returns true if a
 * snapshot was written.
 */
bool exportForCli(const common::CliArgs &args,
                  const Registry &registry = Registry::global());

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_EXPORT_HH
