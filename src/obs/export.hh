/**
 * @file
 * Metrics exporters: Prometheus text exposition, JSON, and CSV
 * renderings of a registry snapshot.
 *
 * The Prometheus format follows the text exposition conventions
 * (HELP/TYPE comments, `_bucket{le=...}` cumulative buckets,
 * `_sum`/`_count` series) so the snapshot can be scraped or fed to
 * promtool unchanged. JSON and CSV carry the same data plus the
 * estimated p50/p95/p99 for histograms, for humans and spreadsheets.
 */

#ifndef TOLTIERS_OBS_EXPORT_HH
#define TOLTIERS_OBS_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/metrics.hh"

namespace toltiers::common {
class CliArgs;
} // namespace toltiers::common

namespace toltiers::obs {

/** Prometheus text exposition of the registry's current state. */
void exportPrometheus(const Registry &registry, std::ostream &os);

/** JSON object with one entry per series. */
void exportJson(const Registry &registry, std::ostream &os);

/** Long-format CSV: one row per series. */
void exportCsv(const Registry &registry, std::ostream &os);

/**
 * Write a snapshot to `path`, picking the format from the
 * extension: .json -> JSON, .csv -> CSV, anything else (.prom,
 * .txt, ...) -> Prometheus text. fatal() if the file cannot be
 * opened.
 */
void writeSnapshot(const Registry &registry, const std::string &path);

/**
 * Standard CLI wiring: if the parsed args carry --metrics-out=PATH,
 * write a snapshot there (see writeSnapshot) and inform() about it.
 * Returns true if a snapshot was written.
 */
bool exportForCli(const common::CliArgs &args,
                  const Registry &registry = Registry::global());

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_EXPORT_HH
