#include "obs/guarantee.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"
#include "obs/metrics.hh"

namespace toltiers::obs {

GuaranteeMonitor::GuaranteeMonitor(GuaranteeConfig cfg) : cfg_(cfg)
{
    TT_ASSERT(cfg_.minSamples > 0, "minSamples must be positive");
    TT_ASSERT(cfg_.latencySlack >= 1.0, "latency slack below 1");
}

GuaranteeMonitor::TierState &
GuaranteeMonitor::state(const std::string &objective,
                        double tolerance)
{
    TierState &ts = tiers_[{objective, tolerance}];
    if (!ts.installed && ts.guarantee.objective.empty()) {
        // Auto-created by an observation: track, never flag.
        ts.guarantee.objective = objective;
        ts.guarantee.tolerance = tolerance;
        ts.guarantee.worstLatency = 0.0;
    }
    return ts;
}

void
GuaranteeMonitor::installTier(const TierGuarantee &guarantee)
{
    std::lock_guard<std::mutex> lock(mu_);
    TierState &ts =
        state(guarantee.objective, guarantee.tolerance);
    ts.guarantee = guarantee;
    ts.installed = true;
}

void
GuaranteeMonitor::observeLatency(const std::string &objective,
                                 double tolerance,
                                 double latencySeconds)
{
    std::lock_guard<std::mutex> lock(mu_);
    TierState &ts = state(objective, tolerance);
    ++ts.latencySamples;
    ts.latencySum += latencySeconds;
}

void
GuaranteeMonitor::observeError(const std::string &objective,
                               double tolerance, double error,
                               double referenceError)
{
    std::lock_guard<std::mutex> lock(mu_);
    TierState &ts = state(objective, tolerance);
    ++ts.errorSamples;
    ts.errorSum += error;
    ts.referenceErrorSum += referenceError;
}

void
GuaranteeMonitor::observeViolation(const std::string &objective,
                                   double tolerance)
{
    std::lock_guard<std::mutex> lock(mu_);
    TierState &ts = state(objective, tolerance);
    ++ts.servedViolations;
}

TierStatus
GuaranteeMonitor::evaluate(const TierState &ts) const
{
    TierStatus st;
    st.guarantee = ts.guarantee;
    st.latencySamples = ts.latencySamples;
    st.errorSamples = ts.errorSamples;
    st.servedViolations = ts.servedViolations;
    if (ts.latencySamples > 0) {
        st.meanLatency =
            ts.latencySum / static_cast<double>(ts.latencySamples);
    }
    if (ts.errorSamples > 0) {
        auto n = static_cast<double>(ts.errorSamples);
        st.meanError = ts.errorSum / n;
        st.meanReferenceError = ts.referenceErrorSum / n;
        if (ts.guarantee.kind == DegradationKind::Relative) {
            st.degradation =
                st.meanReferenceError > 0.0
                    ? (st.meanError - st.meanReferenceError) /
                          st.meanReferenceError
                    : 0.0;
        } else {
            st.degradation = st.meanError - st.meanReferenceError;
        }
    }

    if (!ts.installed)
        return st; // Unbounded promise: never flagged.

    // One explicit violation suffices: the service itself reported
    // that it served outside the promise.
    st.servedViolation = ts.servedViolations > 0;

    if (ts.errorSamples >= cfg_.minSamples &&
        st.degradation >
            ts.guarantee.tolerance + cfg_.epsilon) {
        st.errorViolation = true;
    }
    if (ts.guarantee.worstLatency > 0.0 &&
        ts.latencySamples >= cfg_.minSamples &&
        st.meanLatency >
            ts.guarantee.worstLatency * cfg_.latencySlack +
                cfg_.epsilon) {
        st.latencyViolation = true;
    }
    return st;
}

std::vector<TierStatus>
GuaranteeMonitor::statuses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TierStatus> out;
    out.reserve(tiers_.size());
    for (const auto &[key, ts] : tiers_)
        out.push_back(evaluate(ts));
    return out;
}

std::size_t
GuaranteeMonitor::violationCount() const
{
    std::size_t n = 0;
    for (const TierStatus &st : statuses()) {
        if (st.violated())
            ++n;
    }
    return n;
}

std::string
GuaranteeMonitor::report() const
{
    std::ostringstream oss;
    for (const TierStatus &st : statuses()) {
        oss << common::strprintf(
            "tier %-14s tol %5.2f%%: deg %+6.2f%% "
            "(%zu scored), mean latency %7.1fms",
            st.guarantee.objective.c_str(),
            st.guarantee.tolerance * 100.0, st.degradation * 100.0,
            st.errorSamples, st.meanLatency * 1e3);
        if (st.guarantee.worstLatency > 0.0) {
            oss << common::strprintf(
                " (worst-case %.1fms)",
                st.guarantee.worstLatency * 1e3);
        }
        if (st.errorViolation)
            oss << "  ERROR-GUARANTEE VIOLATED";
        if (st.latencyViolation)
            oss << "  LATENCY-GUARANTEE VIOLATED";
        if (st.servedViolation) {
            oss << common::strprintf(
                "  SERVED %zu VIOLATION(S)", st.servedViolations);
        }
        if (!st.violated())
            oss << "  ok";
        oss << "\n";
    }
    return oss.str();
}

void
GuaranteeMonitor::updateMetrics(Registry &registry) const
{
    for (const TierStatus &st : statuses()) {
        Labels labels = {
            {"objective", st.guarantee.objective},
            {"tier",
             common::strprintf("%g", st.guarantee.tolerance)}};
        registry
            .gauge("tt_guarantee_degradation", labels,
                   "Observed running error degradation per tier")
            .set(st.degradation);
        registry
            .gauge("tt_guarantee_tolerance", labels,
                   "Promised error-degradation bound per tier")
            .set(st.guarantee.tolerance);
        registry
            .gauge("tt_guarantee_violation", labels,
                   "1 when the tier currently violates its promise")
            .set(st.violated() ? 1.0 : 0.0);
        registry
            .gauge("tt_guarantee_served_violations", labels,
                   "Requests explicitly served in violation")
            .set(static_cast<double>(st.servedViolations));
    }
}

} // namespace toltiers::obs
