#include "obs/trace.hh"

#include <fstream>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace toltiers::obs {

using common::fatal;
using common::inform;

double
TraceRecord::rootDuration() const
{
    double total = 0.0;
    for (const SpanRecord &s : spans) {
        if (s.parent == 0)
            total += s.duration;
    }
    return total;
}

// ---------------------------------------------------------------- trace

Trace::Trace(std::uint64_t trace_id)
{
    record_.traceId = trace_id;
}

std::uint64_t
Trace::addSpan(const std::string &name, double start,
               double duration, std::uint64_t parent)
{
    TT_ASSERT(duration >= 0.0, "span duration must be non-negative");
    SpanRecord span;
    span.id = nextSpan_++;
    span.parent = parent;
    span.name = name;
    span.start = start;
    span.duration = duration;
    record_.spans.push_back(std::move(span));
    return record_.spans.back().id;
}

void
Trace::annotate(std::uint64_t span_id, const std::string &key,
                const std::string &value)
{
    for (SpanRecord &s : record_.spans) {
        if (s.id == span_id) {
            s.attrs.emplace_back(key, value);
            return;
        }
    }
    common::panic("annotate: unknown span id ", span_id);
}

void
Trace::setDuration(std::uint64_t span_id, double duration)
{
    TT_ASSERT(duration >= 0.0, "span duration must be non-negative");
    for (SpanRecord &s : record_.spans) {
        if (s.id == span_id) {
            s.duration = duration;
            return;
        }
    }
    common::panic("setDuration: unknown span id ", span_id);
}

// ---------------------------------------------------------- scoped span

ScopedSpan::ScopedSpan(Trace &trace, const std::string &name,
                       std::uint64_t parent)
    : trace_(trace), start_(trace.elapsed())
{
    id_ = trace_.addSpan(name, start_, 0.0, parent);
}

ScopedSpan::~ScopedSpan()
{
    close();
}

void
ScopedSpan::close()
{
    if (!open_)
        return;
    open_ = false;
    double end = trace_.elapsed();
    for (SpanRecord &s : trace_.record_.spans) {
        if (s.id == id_) {
            s.duration = end - start_;
            return;
        }
    }
}

// --------------------------------------------------------------- tracer

Trace
Tracer::startTrace()
{
    return Trace(nextTrace_.fetch_add(1, std::memory_order_relaxed));
}

void
Tracer::setSampleEvery(std::uint64_t n)
{
    sampleEvery_.store(n, std::memory_order_relaxed);
}

std::uint64_t
Tracer::sampleEvery() const
{
    return sampleEvery_.load(std::memory_order_relaxed);
}

bool
Tracer::shouldSample()
{
    std::uint64_t every = sampleEvery_.load(std::memory_order_relaxed);
    if (every == 0)
        return false;
    if (every == 1)
        return true;
    return sampleClock_.fetch_add(1, std::memory_order_relaxed) %
               every ==
           0;
}

void
Tracer::finish(Trace &&trace)
{
    std::lock_guard<std::mutex> lock(mu_);
    traces_.push_back(std::move(trace.record_));
}

std::size_t
Tracer::traceCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return traces_.size();
}

std::vector<TraceRecord>
Tracer::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceRecord> out;
    out.swap(traces_);
    return out;
}

void
Tracer::exportJsonl(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceRecord &t : traces_) {
        common::JsonWriter w(os);
        w.beginObject();
        w.member("traceId", static_cast<std::size_t>(t.traceId));
        w.beginArray("spans");
        for (const SpanRecord &s : t.spans) {
            w.beginObject();
            w.member("id", static_cast<std::size_t>(s.id));
            w.member("parent", static_cast<std::size_t>(s.parent));
            w.member("name", s.name);
            w.member("start", s.start);
            w.member("duration", s.duration);
            if (!s.attrs.empty()) {
                w.beginObject("attrs");
                for (const auto &[k, v] : s.attrs)
                    w.member(k, v);
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
    }
}

void
Tracer::exportJsonl(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file '", path, "'");
    exportJsonl(out);
}

bool
exportTracesForCli(const common::CliArgs &args, const Tracer &tracer)
{
    std::string path = args.getString("trace-out", "");
    if (path.empty())
        return false;
    tracer.exportJsonl(path);
    inform("trace log (", tracer.traceCount(), " traces) -> ", path);
    return true;
}

} // namespace toltiers::obs
