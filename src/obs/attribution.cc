#include "obs/attribution.hh"

#include <algorithm>
#include <map>

namespace toltiers::obs {

IntervalStats
intervalStats(std::vector<Interval> intervals)
{
    IntervalStats stats;
    if (intervals.empty())
        return stats;

    // Sweep line over the interval endpoints: +1 at each start,
    // -1 at each end, accumulating covered / doubly-covered time
    // between consecutive event positions.
    struct Event
    {
        double t;
        int delta;
    };
    std::vector<Event> events;
    events.reserve(intervals.size() * 2);
    for (const Interval &iv : intervals) {
        double end = std::max(iv.start, iv.end);
        events.push_back({iv.start, +1});
        events.push_back({end, -1});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.t != b.t)
                      return a.t < b.t;
                  return a.delta > b.delta; // Starts before ends.
              });

    int depth = 0;
    double prev = events.front().t;
    for (const Event &e : events) {
        double dt = e.t - prev;
        if (dt > 0.0) {
            if (depth >= 1)
                stats.unionSeconds += dt;
            if (depth >= 2)
                stats.overlapSeconds += dt;
        }
        depth += e.delta;
        prev = e.t;
    }
    stats.windowSeconds = events.back().t - events.front().t;
    stats.gapSeconds =
        std::max(0.0, stats.windowSeconds - stats.unionSeconds);
    return stats;
}

namespace {

/** parent span id -> children, in record order. */
std::map<std::uint64_t, std::vector<const SpanRecord *>>
childMap(const TraceRecord &record)
{
    std::map<std::uint64_t, std::vector<const SpanRecord *>> kids;
    for (const SpanRecord &s : record.spans) {
        if (s.parent != 0)
            kids[s.parent].push_back(&s);
    }
    return kids;
}

/** The root: the first parentless span (the `request` span). */
const SpanRecord *
rootSpan(const TraceRecord &record)
{
    for (const SpanRecord &s : record.spans) {
        if (s.parent == 0)
            return &s;
    }
    return nullptr;
}

/** Collect the leaf descendants of `span` as busy intervals. */
void
collectLeafIntervals(
    const SpanRecord *span,
    const std::map<std::uint64_t,
                   std::vector<const SpanRecord *>> &kids,
    std::vector<Interval> &out)
{
    auto it = kids.find(span->id);
    if (it == kids.end()) {
        out.push_back({span->start, span->start + span->duration});
        return;
    }
    for (const SpanRecord *child : it->second)
        collectLeafIntervals(child, kids, out);
}

} // namespace

StageBreakdown
attributeTrace(const TraceRecord &record)
{
    StageBreakdown bd;
    const SpanRecord *root = rootSpan(record);
    if (root == nullptr)
        return bd;
    auto kids = childMap(record);

    auto it = kids.find(root->id);
    if (it == kids.end())
        return bd;
    for (const SpanRecord *child : it->second) {
        if (child->name == "admission") {
            bd.admission += child->duration;
        } else if (child->name == "batch_wait") {
            bd.batchWait += child->duration;
        } else if (child->name == "rule_match") {
            bd.route += child->duration;
        } else if (child->name == "cache_lookup") {
            bd.cache += child->duration;
        } else if (child->name == "execute") {
            // Busy time is the union of the leaf attempt legs; the
            // uncovered remainder of the execution window is retry
            // backoff; doubly covered time is hedge overlap.
            std::vector<Interval> legs;
            collectLeafIntervals(child, kids, legs);
            if (legs.size() == 1 && legs.front().start ==
                                        child->start &&
                legs.front().end ==
                    child->start + child->duration) {
                // Leaf execute span (no attempt children recorded).
                bd.execute += child->duration;
                continue;
            }
            IntervalStats stats = intervalStats(std::move(legs));
            bd.execute += stats.unionSeconds;
            bd.hedgeOverlap += stats.overlapSeconds;
            bd.retryBackoff +=
                std::max(0.0, child->duration - stats.unionSeconds);
        }
    }
    return bd;
}

std::vector<const SpanRecord *>
criticalPath(const TraceRecord &record)
{
    std::vector<const SpanRecord *> path;
    const SpanRecord *node = rootSpan(record);
    if (node == nullptr)
        return path;
    auto kids = childMap(record);
    while (node != nullptr) {
        path.push_back(node);
        auto it = kids.find(node->id);
        if (it == kids.end())
            break;
        // Descend into the child finishing latest (ties: earlier
        // span id, so the walk is deterministic).
        const SpanRecord *next = nullptr;
        double latest = 0.0;
        for (const SpanRecord *child : it->second) {
            double end = child->start + child->duration;
            if (next == nullptr || end > latest) {
                next = child;
                latest = end;
            }
        }
        node = next;
    }
    return path;
}

std::vector<double>
stageSecondsBounds()
{
    return exponentialBounds(1e-7, 10.0, 17);
}

void
recordStageSeconds(Registry &registry, const char *stage_name,
                   double seconds)
{
    registry
        .histogram("tt_stage_seconds", {{"stage", stage_name}},
                   stageSecondsBounds(),
                   "Per-stage share of request wall time")
        .observe(seconds);
}

} // namespace toltiers::obs
