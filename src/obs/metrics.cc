#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace toltiers::obs {

using common::panic;

namespace {

std::atomic<bool> g_metrics_enabled{true};

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Lower `target` to x if x is smaller (lock-free running min). */
void
atomicMin(std::atomic<double> &target, double x)
{
    double cur = target.load(std::memory_order_relaxed);
    while (x < cur &&
           !target.compare_exchange_weak(cur, x,
                                         std::memory_order_relaxed)) {
    }
}

/** Raise `target` to x if x is larger (lock-free running max). */
void
atomicMax(std::atomic<double> &target, double x)
{
    double cur = target.load(std::memory_order_relaxed);
    while (x > cur &&
           !target.compare_exchange_weak(cur, x,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

std::size_t
Counter::stripeIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return idx;
}

void
setMetricsEnabled(bool enabled)
{
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

std::string
labelsKey(const Labels &labels)
{
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto &[k, v] : sorted) {
        if (!out.empty())
            out += ',';
        out += k;
        out += "=\"";
        out += v;
        out += '"';
    }
    return out;
}

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "unknown";
}

// ------------------------------------------------------------ histogram

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(count);

    double below = 0.0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        double in_bucket = static_cast<double>(counts[b]);
        if (in_bucket == 0.0 || below + in_bucket < target) {
            below += in_bucket;
            continue;
        }
        // The target rank falls in bucket b. Interpolate between
        // the bucket's edges; the open edges fall back to the
        // observed extremes so estimates never leave [min, max].
        double lo = b == 0 ? minimum : bounds[b - 1];
        double hi = b < bounds.size() ? bounds[b] : maximum;
        lo = std::max(lo, minimum);
        hi = std::min(hi, maximum);
        if (hi <= lo)
            return lo;
        double frac = (target - below) / in_bucket;
        return lo + frac * (hi - lo);
    }
    return maximum;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(std::make_unique<std::atomic<std::uint64_t>[]>(
          bounds_.size() + 1))
{
    TT_ASSERT(!bounds_.empty(), "histogram needs at least one bound");
    TT_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly ascending");
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
        counts_[b].store(0, std::memory_order_relaxed);
    min_.store(kInf, std::memory_order_relaxed);
    max_.store(-kInf, std::memory_order_relaxed);
}

void
Histogram::observe(double x)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    std::size_t b =
        static_cast<std::size_t>(it - bounds_.begin());
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
    atomicMin(min_, x);
    atomicMax(max_, x);
    count_.fetch_add(1, std::memory_order_relaxed);
}

void
Histogram::merge(const Histogram &other)
{
    TT_ASSERT(bounds_ == other.bounds_,
              "can only merge histograms with identical bounds");
    HistogramSnapshot theirs = other.snapshot();
    for (std::size_t b = 0; b < theirs.counts.size(); ++b) {
        counts_[b].fetch_add(theirs.counts[b],
                             std::memory_order_relaxed);
    }
    sum_.fetch_add(theirs.sum, std::memory_order_relaxed);
    if (theirs.count > 0) {
        atomicMin(min_, theirs.minimum);
        atomicMax(max_, theirs.maximum);
        count_.fetch_add(theirs.count, std::memory_order_relaxed);
    }
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.bounds = bounds_;
    s.counts.resize(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b)
        s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    double lo = min_.load(std::memory_order_relaxed);
    double hi = max_.load(std::memory_order_relaxed);
    // Map the empty-state sentinels back to the documented zeros.
    s.minimum = lo == kInf ? 0.0 : lo;
    s.maximum = hi == -kInf ? 0.0 : hi;
    return s;
}

double
Histogram::mean() const
{
    HistogramSnapshot s = snapshot();
    return s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0;
}

std::vector<double>
defaultLatencyBounds()
{
    return {0.001, 0.0025, 0.005, 0.01,  0.025, 0.05, 0.1,
            0.25,  0.5,    1.0,   2.5,   5.0,   10.0};
}

std::vector<double>
exponentialBounds(double lo, double hi, std::size_t count)
{
    TT_ASSERT(lo > 0.0 && hi > lo && count >= 2,
              "invalid exponential bucket spec");
    std::vector<double> out;
    out.reserve(count);
    double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(count - 1));
    double v = lo;
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(v);
        v *= ratio;
    }
    out.back() = hi;
    return out;
}

std::vector<double>
linearBounds(double lo, double hi, std::size_t count)
{
    TT_ASSERT(hi > lo && count >= 2, "invalid linear bucket spec");
    std::vector<double> out;
    out.reserve(count);
    double step = (hi - lo) / static_cast<double>(count - 1);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(lo + step * static_cast<double>(i));
    return out;
}

// ------------------------------------------------------------- registry

Registry::Family &
Registry::family(const std::string &name, MetricKind kind,
                 const std::string &help)
{
    auto [it, inserted] = families_.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
        it->second.help = help;
    } else if (it->second.kind != kind) {
        panic("metric '", name, "' registered as ",
              metricKindName(it->second.kind), ", requested as ",
              metricKindName(kind));
    }
    if (it->second.help.empty() && !help.empty())
        it->second.help = help;
    return it->second;
}

Counter &
Registry::counter(const std::string &name, const Labels &labels,
                  const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &fam = family(name, MetricKind::Counter, help);
    Series &s = fam.series[labelsKey(labels)];
    if (!s.counter) {
        s.labels = labels;
        s.counter = std::make_unique<Counter>();
    }
    return *s.counter;
}

Gauge &
Registry::gauge(const std::string &name, const Labels &labels,
                const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &fam = family(name, MetricKind::Gauge, help);
    Series &s = fam.series[labelsKey(labels)];
    if (!s.gauge) {
        s.labels = labels;
        s.gauge = std::make_unique<Gauge>();
    }
    return *s.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const Labels &labels,
                    std::vector<double> bounds,
                    const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &fam = family(name, MetricKind::Histogram, help);
    Series &s = fam.series[labelsKey(labels)];
    if (!s.histogram) {
        s.labels = labels;
        if (bounds.empty())
            bounds = defaultLatencyBounds();
        s.histogram = std::make_unique<Histogram>(std::move(bounds));
    }
    return *s.histogram;
}

std::vector<SeriesSnapshot>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SeriesSnapshot> out;
    for (const auto &[name, fam] : families_) {
        for (const auto &[key, s] : fam.series) {
            SeriesSnapshot snap;
            snap.name = name;
            snap.help = fam.help;
            snap.kind = fam.kind;
            snap.labels = s.labels;
            switch (fam.kind) {
              case MetricKind::Counter:
                snap.value = s.counter->value();
                break;
              case MetricKind::Gauge:
                snap.value = s.gauge->value();
                break;
              case MetricKind::Histogram:
                snap.hist = s.histogram->snapshot();
                break;
            }
            out.push_back(std::move(snap));
        }
    }
    return out;
}

std::size_t
Registry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[name, fam] : families_)
        n += fam.series.size();
    return n;
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    families_.clear();
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

} // namespace toltiers::obs
