/**
 * @file
 * Observability umbrella header and the ObsContext handle that
 * instrumented components accept.
 *
 * The subsystem has five legs (see README.md "Observability"):
 *  - metrics.hh / export.hh — the thread-safe metrics registry and
 *    its Prometheus/JSON/CSV exporters;
 *  - trace.hh — per-request span timelines (causally connected via
 *    TraceContext) and the JSONL trace log;
 *  - attribution.hh — stage-latency attribution and the
 *    critical-path walker over finished traces;
 *  - guarantee.hh — the live tier-guarantee monitor;
 *  - slo.hh — the sliding-window SLO burn-rate engine.
 *
 * ObsContext bundles optional pointers to the sinks so a component
 * can be instrumented with one attach call; every pointer may be
 * null, and a default-constructed context disables everything.
 */

#ifndef TOLTIERS_OBS_OBS_HH
#define TOLTIERS_OBS_OBS_HH

#include "obs/attribution.hh"
#include "obs/export.hh"
#include "obs/guarantee.hh"
#include "obs/metrics.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"

namespace toltiers::obs {

/** Optional telemetry sinks a component records into. */
struct ObsContext
{
    Registry *metrics = nullptr;
    Tracer *tracer = nullptr;
    GuaranteeMonitor *monitor = nullptr;
    SloTracker *slo = nullptr;

    /** Context with every sink, metrics on the global registry. */
    static ObsContext
    standard(Tracer *tracer, GuaranteeMonitor *monitor,
             SloTracker *slo = nullptr)
    {
        return {&Registry::global(), tracer, monitor, slo};
    }
};

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_OBS_HH
