/**
 * @file
 * Observability umbrella header and the ObsContext handle that
 * instrumented components accept.
 *
 * The subsystem has three legs (see README.md "Observability"):
 *  - metrics.hh / export.hh — the thread-safe metrics registry and
 *    its Prometheus/JSON/CSV exporters;
 *  - trace.hh — per-request span timelines and the JSONL trace log;
 *  - guarantee.hh — the live tier-guarantee monitor.
 *
 * ObsContext bundles optional pointers to all three so a component
 * can be instrumented with one attach call; every pointer may be
 * null, and a default-constructed context disables everything.
 */

#ifndef TOLTIERS_OBS_OBS_HH
#define TOLTIERS_OBS_OBS_HH

#include "obs/export.hh"
#include "obs/guarantee.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace toltiers::obs {

/** Optional telemetry sinks a component records into. */
struct ObsContext
{
    Registry *metrics = nullptr;
    Tracer *tracer = nullptr;
    GuaranteeMonitor *monitor = nullptr;

    /** Context with all three sinks, metrics on the global registry. */
    static ObsContext
    standard(Tracer *tracer, GuaranteeMonitor *monitor)
    {
        return {&Registry::global(), tracer, monitor};
    }
};

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_OBS_HH
