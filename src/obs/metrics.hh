/**
 * @file
 * Thread-safe metrics registry: counters, gauges, and fixed-bucket
 * histograms with quantile estimation.
 *
 * The registry is the live-telemetry counterpart of the offline
 * figure pipeline: the tier service, the cluster simulator, and the
 * rule generator all record into it as they run, and the exporters
 * (obs/export.hh) turn a snapshot into Prometheus text, JSON, or
 * CSV for an operator or a scraper.
 *
 * Concurrency model: metric handles returned by the registry are
 * stable for the registry's lifetime, so hot paths resolve a handle
 * once and then update it lock-free. Counters are striped across
 * cache-line-padded atomics (writers on different threads touch
 * different lines; value() sums the stripes), gauges are single
 * atomics, and histogram updates are per-bucket atomics — no mutex
 * anywhere on the update path. Histogram snapshots are taken
 * without stopping writers, so a snapshot racing updates may be
 * momentarily inconsistent between count/sum/buckets (each field
 * is individually atomic); totals are exact whenever reads are
 * ordered after writes (e.g. after a thread join). Registration
 * itself takes the registry mutex and is expected off the hot
 * path.
 */

#ifndef TOLTIERS_OBS_METRICS_HH
#define TOLTIERS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace toltiers::obs {

/** Label set attached to one series, e.g. {{"service", "asr"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Render labels as a stable `k="v",k2="v2"` key (sorted by key). */
std::string labelsKey(const Labels &labels);

/** The three metric kinds the registry supports. */
enum class MetricKind { Counter, Gauge, Histogram };

/** Printable kind name ("counter" / "gauge" / "histogram"). */
const char *metricKindName(MetricKind kind);

/**
 * Monotonically increasing value (events, accumulated seconds).
 *
 * Internally striped: each writing thread lands on one of a few
 * cache-line-padded atomic cells, so heavily shared hot counters
 * (the tier service's tt_* tallies under a concurrent front door)
 * do not serialize on a single contended line. value() sums the
 * stripes; it is exact whenever it is ordered after the writes.
 */
class Counter
{
  public:
    /** Add `delta` (must be >= 0). */
    void
    inc(double delta = 1.0)
    {
        stripes_[stripeIndex()].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    double
    value() const
    {
        double total = 0.0;
        for (const Stripe &s : stripes_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    struct alignas(64) Stripe
    {
        std::atomic<double> v{0.0};
    };
    static constexpr std::size_t kStripes = 8;

    /** The calling thread's stripe (round-robin assigned once). */
    static std::size_t stripeIndex();

    Stripe stripes_[kStripes];
};

/** A value that can go up and down (utilization, queue depth). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time copy of one histogram's state. */
struct HistogramSnapshot
{
    std::vector<double> bounds;        //!< Upper bucket bounds.
    std::vector<std::uint64_t> counts; //!< Per bucket; last = +Inf.
    std::uint64_t count = 0;
    double sum = 0.0;
    double minimum = 0.0; //!< Smallest observed sample.
    double maximum = 0.0; //!< Largest observed sample.

    /**
     * Estimated q-quantile (q in [0, 1]) by linear interpolation
     * within the bucket holding the target rank; the open first and
     * last buckets interpolate against the observed min/max. 0 when
     * empty.
     */
    double quantile(double q) const;
};

/**
 * Fixed-bucket histogram. Bounds are ascending upper bucket edges;
 * an implicit +Inf bucket catches everything above the last bound.
 * Updates are lock-free (per-bucket atomics, CAS'd extremes); see
 * the file comment for snapshot consistency.
 */
class Histogram
{
  public:
    /** @param bounds strictly ascending, non-empty. */
    explicit Histogram(std::vector<double> bounds);

    /** Record one sample. */
    void observe(double x);

    /** Fold another histogram (same bounds) into this one. */
    void merge(const Histogram &other);

    /** Consistent copy of the full state. */
    HistogramSnapshot snapshot() const;

    std::uint64_t count() const { return snapshot().count; }
    double sum() const { return snapshot().sum; }
    double mean() const;

    /** Estimated quantile; see HistogramSnapshot::quantile. */
    double quantile(double q) const { return snapshot().quantile(q); }
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    const std::vector<double> &bounds() const { return bounds_; }

  private:
    std::vector<double> bounds_;
    /** Per-bucket tallies, bounds_.size() + 1 entries. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0}; //!< +Inf until first sample.
    std::atomic<double> max_{0.0}; //!< -Inf until first sample.
};

/** Default latency bucket bounds in seconds (1ms .. 10s, log-ish). */
std::vector<double> defaultLatencyBounds();

/** `count` exponentially spaced bounds from lo to hi inclusive. */
std::vector<double> exponentialBounds(double lo, double hi,
                                      std::size_t count);

/** `count` linearly spaced bounds from lo to hi inclusive. */
std::vector<double> linearBounds(double lo, double hi,
                                 std::size_t count);

/** Point-in-time copy of one series for the exporters. */
struct SeriesSnapshot
{
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::Counter;
    Labels labels;
    double value = 0.0;     //!< Counter/gauge value.
    HistogramSnapshot hist; //!< Populated for histograms.
};

/**
 * Named, labelled metric store. One registry instance can back a
 * whole process (see global()), or tests can build their own.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * The series handle for (name, labels), creating it on first
     * use. Handles stay valid for the registry's lifetime.
     * panic() if `name` is already registered with another kind.
     */
    Counter &counter(const std::string &name,
                     const Labels &labels = {},
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, const Labels &labels = {},
                 const std::string &help = "");

    /**
     * Histogram handle. `bounds` is consulted only when the series
     * is first created; later calls may pass {} to reuse it.
     */
    Histogram &histogram(const std::string &name,
                         const Labels &labels = {},
                         std::vector<double> bounds = {},
                         const std::string &help = "");

    /** Consistent copy of every series, sorted by (name, labels). */
    std::vector<SeriesSnapshot> snapshot() const;

    /** Number of registered series. */
    std::size_t seriesCount() const;

    /** Drop every series (tests / between benchmark repetitions). */
    void clear();

    /**
     * The process-wide registry the built-in instrumentation
     * records into.
     */
    static Registry &global();

  private:
    struct Series
    {
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Family
    {
        MetricKind kind = MetricKind::Counter;
        std::string help;
        std::map<std::string, Series> series; //!< By labelsKey.
    };

    Family &family(const std::string &name, MetricKind kind,
                   const std::string &help);

    mutable std::mutex mu_;
    std::map<std::string, Family> families_;
};

/**
 * Process-wide instrumentation switch. When false, the built-in
 * call sites (service adapters, simulator, tier service) skip
 * recording; explicit registry use is unaffected.
 */
void setMetricsEnabled(bool enabled);
bool metricsEnabled();

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_METRICS_HH
