/**
 * @file
 * SLO burn-rate engine: sliding-window error-budget accounting per
 * tier, layered on top of the GuaranteeMonitor's pass/fail signal.
 *
 * The GuaranteeMonitor answers "is this tier's promise broken right
 * now?"; the SloTracker answers the operational question a
 * provisioner or pager needs: "how fast is this tier spending its
 * error budget?". Each served request is one binary event — good
 * (the tolerance promise was honored, by the matched ensemble or a
 * safe fallback) or bad (an explicit guarantee violation). The
 * tracker keeps two sliding windows per (objective, tier), a fast
 * window that reacts within tens of requests and a slow window
 * that smooths transients, and derives from each the burn rate:
 *
 *     burn = badFraction(window) / (1 - target)
 *
 * i.e. the multiple of the sustainable failure budget the tier is
 * currently consuming (burn 1.0 spends exactly the budget; burn
 * 14.4 exhausts a 30-day budget in 2 days — the classic paging
 * threshold). Multi-rate alerting follows the multiwindow scheme:
 * a Page fires only when BOTH windows exceed the page rate (fast
 * confirms it is happening now, slow confirms it is sustained), a
 * Ticket when both exceed the lower ticket rate.
 *
 * Windows are request-count windows, not wall-clock windows: the
 * serving stack's determinism contract bans wall-time-dependent
 * control state, and a count window makes the engine's output a
 * pure function of the event sequence. Everything is exported as
 * tt_slo_* series when a registry is attached.
 */

#ifndef TOLTIERS_OBS_SLO_HH
#define TOLTIERS_OBS_SLO_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace toltiers::obs {

class Registry;

/** Budget policy for one tier (or the tracker-wide default). */
struct SloPolicy
{
    /** Target good fraction; 1 - target is the error budget. */
    double target = 0.999;
    /** Fast (reactive) window length, in events. */
    std::size_t fastWindowEvents = 128;
    /** Slow (smoothing) window length, in events. */
    std::size_t slowWindowEvents = 1024;
    /** Burn rate at which both windows must arrive to page. */
    double pageBurnRate = 14.4;
    /** Burn rate at which both windows must arrive to ticket. */
    double ticketBurnRate = 6.0;
    /** Events observed before alerts may fire (a cold window's
     * first bad event is noise, not an incident). */
    std::size_t minEvents = 32;
};

/** Alert severity, ordered; exported as the numeric gauge value. */
enum class SloAlert
{
    None = 0,
    Ticket = 1,
    Page = 2,
};

/** Printable alert name ("none" / "ticket" / "page"). */
const char *sloAlertName(SloAlert alert);

/** Point-in-time budget accounting for one tier. */
struct SloStatus
{
    std::string objective;
    double tolerance = 0.0;
    SloPolicy policy;

    std::uint64_t events = 0; //!< Lifetime events observed.
    std::uint64_t bad = 0;    //!< Lifetime bad events.
    double fastBurnRate = 0.0;
    double slowBurnRate = 0.0;
    /** Fraction of the slow window's error budget still unspent;
     * negative when the window is overdrawn. */
    double budgetRemaining = 1.0;
    SloAlert alert = SloAlert::None;
};

/** Point-in-time budget accounting for one tenant (the same
 * two-window burn-rate math as SloStatus, keyed by tenant instead
 * of tier — so a noisy neighbor's violations page that tenant's
 * budget, not its victims'). */
struct TenantSloStatus
{
    std::string tenant; //!< Metric label ("anonymous" for "").
    SloPolicy policy;
    std::uint64_t events = 0; //!< Lifetime events observed.
    std::uint64_t bad = 0;    //!< Lifetime bad events.
    double fastBurnRate = 0.0;
    double slowBurnRate = 0.0;
    SloAlert alert = SloAlert::None;
};

/**
 * Sliding-window error-budget tracker for every installed tier.
 * All calls are thread-safe; record() is a deque push plus counter
 * updates under one mutex, cheap enough for the serving path.
 */
class SloTracker
{
  public:
    explicit SloTracker(SloPolicy defaults = SloPolicy());

    /**
     * Install (or re-install) a tier so an idle tier still exports
     * zeroed series; recording into an uninstalled tier installs it
     * with the default policy on first use.
     */
    void installTier(const std::string &objective, double tolerance);

    /** Install a tier with its own policy. */
    void installTier(const std::string &objective, double tolerance,
                     const SloPolicy &policy);

    /**
     * Mirror every tier's tt_slo_* series into `registry` on each
     * record() / installTier(). Pass nullptr to detach. The
     * registry must outlive the tracker.
     */
    void attachMetrics(Registry *registry);

    /** Record one served request's outcome for a tier. */
    void record(const std::string &objective, double tolerance,
                bool good);

    /**
     * Record the same outcome against the requesting tenant's own
     * error budget (label per serving::tenantMetricLabel; the
     * tracker treats it as an opaque key). Uses the tracker-wide
     * default policy; exported as tt_tenant_slo_* / tt_tenant_burn
     * / tt_tenant_alert series when metrics are attached.
     */
    void recordTenant(const std::string &tenant_label, bool good);

    /** Current accounting for one tier (zeros if unknown). */
    SloStatus status(const std::string &objective,
                     double tolerance) const;

    /** Current accounting for every tier, sorted by key. */
    std::vector<SloStatus> statuses() const;

    /** Current accounting for every tenant seen, sorted by label. */
    std::vector<TenantSloStatus> tenantStatuses() const;

    /** Number of tiers currently at or above Ticket severity. */
    std::size_t alertCount() const;

  private:
    struct Window
    {
        std::deque<bool> events; //!< true = bad.
        std::uint64_t bad = 0;

        void
        push(bool is_bad, std::size_t capacity)
        {
            events.push_back(is_bad);
            bad += is_bad ? 1 : 0;
            while (events.size() > capacity) {
                bad -= events.front() ? 1 : 0;
                events.pop_front();
            }
        }

        double
        badFraction() const
        {
            if (events.empty())
                return 0.0;
            return static_cast<double>(bad) /
                   static_cast<double>(events.size());
        }
    };

    struct TierSlo
    {
        SloPolicy policy;
        Window fast;
        Window slow;
        std::uint64_t events = 0;
        std::uint64_t bad = 0;
    };

    using Key = std::pair<std::string, double>;

    SloStatus evaluate(const Key &key, const TierSlo &ts) const;
    void publish(const Key &key, const TierSlo &ts);
    TenantSloStatus evaluateTenant(const std::string &tenant,
                                   const TierSlo &ts) const;
    void publishTenant(const std::string &tenant,
                       const TierSlo &ts);

    mutable std::mutex mu_;
    std::map<Key, TierSlo> tiers_;
    /** Per-tenant windows, keyed by metric label. */
    std::map<std::string, TierSlo> tenants_;
    SloPolicy defaults_;
    Registry *metrics_ = nullptr;
};

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_SLO_HH
