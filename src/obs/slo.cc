#include "obs/slo.hh"

#include <algorithm>

#include "common/strings.hh"
#include "obs/metrics.hh"

namespace toltiers::obs {

namespace {

const char *sloAlertNames[] = {"none", "ticket", "page"};

Labels
sloLabels(const std::pair<std::string, double> &key)
{
    return {{"objective", key.first},
            {"tier", common::strprintf("%g", key.second)}};
}

/** The spendable error budget; floored so burn stays finite even
 * for a (degenerate) 100% target. */
double
errorBudget(const SloPolicy &policy)
{
    return std::max(1e-12, 1.0 - policy.target);
}

} // namespace

const char *
sloAlertName(SloAlert alert)
{
    return sloAlertNames[static_cast<std::size_t>(alert)];
}

SloTracker::SloTracker(SloPolicy defaults) : defaults_(defaults) {}

void
SloTracker::installTier(const std::string &objective,
                        double tolerance)
{
    installTier(objective, tolerance, defaults_);
}

void
SloTracker::installTier(const std::string &objective,
                        double tolerance, const SloPolicy &policy)
{
    std::lock_guard<std::mutex> lock(mu_);
    Key key{objective, tolerance};
    TierSlo &ts = tiers_[key];
    ts.policy = policy;
    publish(key, ts);
}

void
SloTracker::attachMetrics(Registry *registry)
{
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = registry;
    if (metrics_ != nullptr) {
        for (const auto &[key, ts] : tiers_)
            publish(key, ts);
        for (const auto &[tenant, ts] : tenants_)
            publishTenant(tenant, ts);
    }
}

void
SloTracker::record(const std::string &objective, double tolerance,
                   bool good)
{
    std::lock_guard<std::mutex> lock(mu_);
    Key key{objective, tolerance};
    auto it = tiers_.find(key);
    if (it == tiers_.end()) {
        it = tiers_.emplace(key, TierSlo{}).first;
        it->second.policy = defaults_;
    }
    TierSlo &ts = it->second;
    bool bad = !good;
    ++ts.events;
    ts.bad += bad ? 1 : 0;
    ts.fast.push(bad, ts.policy.fastWindowEvents);
    ts.slow.push(bad, ts.policy.slowWindowEvents);
    publish(key, ts);
}

void
SloTracker::recordTenant(const std::string &tenant_label, bool good)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant_label);
    if (it == tenants_.end()) {
        it = tenants_.emplace(tenant_label, TierSlo{}).first;
        it->second.policy = defaults_;
    }
    TierSlo &ts = it->second;
    bool bad = !good;
    ++ts.events;
    ts.bad += bad ? 1 : 0;
    ts.fast.push(bad, ts.policy.fastWindowEvents);
    ts.slow.push(bad, ts.policy.slowWindowEvents);
    publishTenant(tenant_label, ts);
}

SloStatus
SloTracker::evaluate(const Key &key, const TierSlo &ts) const
{
    SloStatus status;
    status.objective = key.first;
    status.tolerance = key.second;
    status.policy = ts.policy;
    status.events = ts.events;
    status.bad = ts.bad;

    double budget = errorBudget(ts.policy);
    status.fastBurnRate = ts.fast.badFraction() / budget;
    status.slowBurnRate = ts.slow.badFraction() / budget;
    status.budgetRemaining = 1.0 - status.slowBurnRate;

    // Multiwindow multi-burn-rate alerting: both the reactive and
    // the sustained window must agree before anything fires, and a
    // cold tier never alerts.
    if (ts.events >= ts.policy.minEvents) {
        double both = std::min(status.fastBurnRate,
                               status.slowBurnRate);
        if (both >= ts.policy.pageBurnRate)
            status.alert = SloAlert::Page;
        else if (both >= ts.policy.ticketBurnRate)
            status.alert = SloAlert::Ticket;
    }
    return status;
}

void
SloTracker::publish(const Key &key, const TierSlo &ts)
{
    if (metrics_ == nullptr || !metricsEnabled())
        return;
    SloStatus status = evaluate(key, ts);
    Labels labels = sloLabels(key);
    metrics_
        ->gauge("tt_slo_events_total", labels,
                "Requests accounted against the tier's SLO")
        .set(static_cast<double>(status.events));
    metrics_
        ->gauge("tt_slo_bad_total", labels,
                "Requests that spent error budget (violations)")
        .set(static_cast<double>(status.bad));
    metrics_
        ->gauge("tt_slo_burn_rate_fast", labels,
                "Error-budget burn rate over the fast window")
        .set(status.fastBurnRate);
    metrics_
        ->gauge("tt_slo_burn_rate_slow", labels,
                "Error-budget burn rate over the slow window")
        .set(status.slowBurnRate);
    metrics_
        ->gauge("tt_slo_budget_remaining", labels,
                "Unspent fraction of the slow window's error budget")
        .set(status.budgetRemaining);
    metrics_
        ->gauge("tt_slo_alert_level", labels,
                "Multiwindow alert severity (0 none, 1 ticket, "
                "2 page)")
        .set(static_cast<double>(status.alert));
}

TenantSloStatus
SloTracker::evaluateTenant(const std::string &tenant,
                           const TierSlo &ts) const
{
    TenantSloStatus status;
    status.tenant = tenant;
    status.policy = ts.policy;
    status.events = ts.events;
    status.bad = ts.bad;

    double budget = errorBudget(ts.policy);
    status.fastBurnRate = ts.fast.badFraction() / budget;
    status.slowBurnRate = ts.slow.badFraction() / budget;

    // The same multiwindow agreement rule as the tier alerts.
    if (ts.events >= ts.policy.minEvents) {
        double both = std::min(status.fastBurnRate,
                               status.slowBurnRate);
        if (both >= ts.policy.pageBurnRate)
            status.alert = SloAlert::Page;
        else if (both >= ts.policy.ticketBurnRate)
            status.alert = SloAlert::Ticket;
    }
    return status;
}

void
SloTracker::publishTenant(const std::string &tenant,
                          const TierSlo &ts)
{
    if (metrics_ == nullptr || !metricsEnabled())
        return;
    TenantSloStatus status = evaluateTenant(tenant, ts);
    Labels labels = {{"tenant", tenant}};
    metrics_
        ->gauge("tt_tenant_slo_events_total", labels,
                "Requests accounted against the tenant's SLO")
        .set(static_cast<double>(status.events));
    metrics_
        ->gauge("tt_tenant_slo_bad_total", labels,
                "Tenant requests that spent error budget")
        .set(static_cast<double>(status.bad));
    metrics_
        ->gauge("tt_tenant_burn_rate_fast", labels,
                "Tenant error-budget burn over the fast window")
        .set(status.fastBurnRate);
    metrics_
        ->gauge("tt_tenant_burn_rate_slow", labels,
                "Tenant error-budget burn over the slow window")
        .set(status.slowBurnRate);
    metrics_
        ->gauge("tt_tenant_alert_level", labels,
                "Tenant multiwindow alert severity (0 none, "
                "1 ticket, 2 page)")
        .set(static_cast<double>(status.alert));
}

SloStatus
SloTracker::status(const std::string &objective,
                   double tolerance) const
{
    std::lock_guard<std::mutex> lock(mu_);
    Key key{objective, tolerance};
    auto it = tiers_.find(key);
    if (it == tiers_.end()) {
        SloStatus none;
        none.objective = objective;
        none.tolerance = tolerance;
        none.policy = defaults_;
        return none;
    }
    return evaluate(key, it->second);
}

std::vector<SloStatus>
SloTracker::statuses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SloStatus> out;
    out.reserve(tiers_.size());
    for (const auto &[key, ts] : tiers_)
        out.push_back(evaluate(key, ts));
    return out;
}

std::vector<TenantSloStatus>
SloTracker::tenantStatuses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TenantSloStatus> out;
    out.reserve(tenants_.size());
    for (const auto &[tenant, ts] : tenants_)
        out.push_back(evaluateTenant(tenant, ts));
    return out;
}

std::size_t
SloTracker::alertCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[key, ts] : tiers_) {
        if (evaluate(key, ts).alert != SloAlert::None)
            ++n;
    }
    return n;
}

} // namespace toltiers::obs
