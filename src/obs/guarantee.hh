/**
 * @file
 * Live tier-guarantee monitoring.
 *
 * The paper's operational claim is that every installed tier keeps
 * its promise: the observed error degradation versus the reference
 * (most accurate) version stays within the tier's tolerance, at a
 * response time no worse than the worst case the rule generator
 * recorded. Offline, the figure pipeline asserts this after the
 * fact; the GuaranteeMonitor asserts it *while the service runs* —
 * each tier accumulates its observed errors and latencies, and the
 * monitor flags a violation the moment a tier's running degradation
 * exceeds its tolerance (or its running mean latency exceeds the
 * recorded worst case with slack), once enough samples have
 * accumulated to make the signal meaningful.
 *
 * Error ground truth is not available inside the serving path (the
 * live service does not know the reference transcript), so the
 * split mirrors reality: the tier service feeds latencies
 * automatically, while error observations are fed by whichever
 * component can score outputs (the replay harness, a shadow scorer,
 * or an offline join).
 */

#ifndef TOLTIERS_OBS_GUARANTEE_HH
#define TOLTIERS_OBS_GUARANTEE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace toltiers::obs {

class Registry;

/** How a tier's tolerance is compared against observed errors. */
enum class DegradationKind
{
    Relative,       //!< (err - ref) / ref.
    AbsolutePoints, //!< err - ref.
};

/** The promise one installed tier makes (from its routing rule). */
struct TierGuarantee
{
    std::string objective;  //!< "response-time" or "cost".
    double tolerance = 0.0; //!< Error-degradation bound.
    /** Worst-case mean latency the rule generator recorded (s);
     * <= 0 disables latency monitoring for the tier. */
    double worstLatency = 0.0;
    /** Worst-case mean cost recorded ($); informational. */
    double worstCost = 0.0;
    DegradationKind kind = DegradationKind::Relative;
};

/** Monitor thresholds. */
struct GuaranteeConfig
{
    /** Observations before a tier can be flagged (running means on
     * fewer samples are noise, not violations). */
    std::size_t minSamples = 30;
    /** Multiplier on the recorded worst-case latency before the
     * running mean counts as a latency violation. */
    double latencySlack = 1.5;
    /** Numerical slack on the tolerance comparison. */
    double epsilon = 1e-9;
};

/** Live status of one monitored tier. */
struct TierStatus
{
    TierGuarantee guarantee;

    std::size_t latencySamples = 0;
    double meanLatency = 0.0;
    std::size_t errorSamples = 0;
    double meanError = 0.0;
    double meanReferenceError = 0.0;
    double degradation = 0.0; //!< Under the tier's kind.

    /** Requests the service explicitly served in violation. */
    std::size_t servedViolations = 0;

    bool errorViolation = false;
    bool latencyViolation = false;
    bool servedViolation = false;

    bool violated() const
    {
        return errorViolation || latencyViolation || servedViolation;
    }
};

/**
 * Tracks every installed tier's observed error degradation and
 * latency against its promise. All observe calls are thread-safe.
 */
class GuaranteeMonitor
{
  public:
    explicit GuaranteeMonitor(GuaranteeConfig cfg = GuaranteeConfig());

    /**
     * Install (or replace) the promise for (objective, tolerance).
     * Unknown tiers observed before installation are tracked with
     * an unbounded promise and never flagged.
     */
    void installTier(const TierGuarantee &guarantee);

    /** Record one served request's latency for a tier. */
    void observeLatency(const std::string &objective,
                        double tolerance, double latencySeconds);

    /**
     * Record one scored output for a tier: the observed error of
     * the response and the reference version's error on the same
     * payload.
     */
    void observeError(const std::string &objective, double tolerance,
                      double error, double referenceError);

    /**
     * Record one request the tier service *explicitly* served in
     * violation of its promise (no tolerance-satisfying version
     * could answer). Unlike running-mean drift, a single served
     * violation flags the tier immediately — the service itself
     * admitted the promise broke.
     */
    void observeViolation(const std::string &objective,
                          double tolerance);

    /** Current status of every tracked tier, sorted by key. */
    std::vector<TierStatus> statuses() const;

    /** Number of tiers currently in violation. */
    std::size_t violationCount() const;

    /** Human-readable status report, one line per tier. */
    std::string report() const;

    /**
     * Publish per-tier status into a registry:
     * tt_guarantee_degradation, tt_guarantee_tolerance,
     * and tt_guarantee_violation gauges labelled by
     * objective/tier.
     */
    void updateMetrics(Registry &registry) const;

    const GuaranteeConfig &config() const { return cfg_; }

  private:
    struct TierState
    {
        TierGuarantee guarantee;
        bool installed = false; //!< False: auto-created, unbounded.
        std::size_t latencySamples = 0;
        double latencySum = 0.0;
        std::size_t errorSamples = 0;
        double errorSum = 0.0;
        double referenceErrorSum = 0.0;
        std::size_t servedViolations = 0;
    };

    using Key = std::pair<std::string, double>;

    TierState &state(const std::string &objective, double tolerance);
    TierStatus evaluate(const TierState &ts) const;

    GuaranteeConfig cfg_;
    mutable std::mutex mu_;
    std::map<Key, TierState> tiers_;
};

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_GUARANTEE_HH
