#include "obs/export.hh"

#include <algorithm>
#include <cinttypes>
#include <fstream>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::obs {

using common::fatal;
using common::inform;

namespace {

std::string
prometheusLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : sorted) {
        if (!first)
            out += ",";
        first = false;
        out += k;
        out += "=\"";
        out += escapePrometheusLabelValue(v);
        out += "\"";
    }
    out += "}";
    return out;
}

/** Append one extra label to a set (for the histogram `le` label). */
std::string
prometheusLabelsWith(const Labels &labels, const std::string &key,
                     const std::string &value)
{
    Labels extended = labels;
    extended.emplace_back(key, value);
    return prometheusLabels(extended);
}

std::string
formatNumber(double v)
{
    // Round-trippable shortest representation; Prometheus accepts
    // scientific notation.
    return common::strprintf("%.17g", v);
}

std::string
formatBound(double v)
{
    return common::strprintf("%g", v);
}

/** The deprecated toltiers_* name for a family, or "" if none. */
std::string
legacyNameOf(const std::string &name)
{
    for (const auto &[current, legacy] : legacyMetricAliases()) {
        if (current == name)
            return legacy;
    }
    return "";
}

} // namespace

std::string
escapePrometheusLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

const std::vector<std::pair<std::string, std::string>> &
legacyMetricAliases()
{
    static const std::vector<std::pair<std::string, std::string>>
        aliases = {
            {"tt_tier_requests_total", "toltiers_tier_requests_total"},
            {"tt_tier_escalations_total",
             "toltiers_tier_escalations_total"},
            {"tt_tier_latency_seconds",
             "toltiers_tier_latency_seconds"},
            {"tt_tier_cost_dollars", "toltiers_tier_cost_dollars"},
            {"tt_tier_rule_tolerance",
             "toltiers_tier_rule_tolerance"},
            {"tt_guarantee_degradation",
             "toltiers_guarantee_degradation"},
            {"tt_guarantee_tolerance",
             "toltiers_guarantee_tolerance"},
            {"tt_guarantee_violation",
             "toltiers_guarantee_violation"},
            {"tt_guarantee_served_violations",
             "toltiers_guarantee_served_violations"},
            {"tt_sim_queue_wait_seconds",
             "toltiers_sim_queue_wait_seconds"},
            {"tt_sim_busy_seconds_total",
             "toltiers_sim_busy_seconds_total"},
            {"tt_sim_cancelled_busy_seconds_total",
             "toltiers_sim_cancelled_busy_seconds_total"},
            {"tt_sim_completed_stages_total",
             "toltiers_sim_completed_stages_total"},
            {"tt_sim_cancelled_stages_total",
             "toltiers_sim_cancelled_stages_total"},
            {"tt_sim_faulted_stages_total",
             "toltiers_sim_faulted_stages_total"},
            {"tt_sim_retries_total", "toltiers_sim_retries_total"},
            {"tt_sim_pool_utilization",
             "toltiers_sim_pool_utilization"},
            {"tt_rulegen_trials_per_config",
             "toltiers_rulegen_trials_per_config"},
            {"tt_rulegen_trials_total",
             "toltiers_rulegen_trials_total"},
            {"tt_rulegen_configs_total",
             "toltiers_rulegen_configs_total"},
            {"tt_rulegen_bootstrap_seconds_total",
             "toltiers_rulegen_bootstrap_seconds_total"},
            {"tt_rulegen_configs_pruned_total",
             "toltiers_rulegen_configs_pruned_total"},
            {"tt_rulegen_generate_seconds",
             "toltiers_rulegen_generate_seconds"},
            {"tt_inference_wall_seconds",
             "toltiers_inference_wall_seconds"},
            {"tt_faults_injected_total",
             "toltiers_faults_injected_total"},
        };
    return aliases;
}

void
exportPrometheus(const Registry &registry, std::ostream &os,
                 bool legacy_aliases)
{
    std::vector<SeriesSnapshot> series = registry.snapshot();
    if (legacy_aliases) {
        // Emit each renamed family a second time under its old
        // name, re-sorted so families stay contiguous.
        std::vector<SeriesSnapshot> aliased;
        for (const SeriesSnapshot &s : series) {
            std::string legacy = legacyNameOf(s.name);
            if (legacy.empty())
                continue;
            SeriesSnapshot copy = s;
            copy.name = std::move(legacy);
            copy.help = s.help.empty()
                            ? ""
                            : s.help + " (deprecated alias of " +
                                  s.name + ")";
            aliased.push_back(std::move(copy));
        }
        series.insert(series.end(),
                      std::make_move_iterator(aliased.begin()),
                      std::make_move_iterator(aliased.end()));
        std::sort(series.begin(), series.end(),
                  [](const SeriesSnapshot &a,
                     const SeriesSnapshot &b) {
                      if (a.name != b.name)
                          return a.name < b.name;
                      return labelsKey(a.labels) <
                             labelsKey(b.labels);
                  });
    }

    std::string last_name;
    for (const SeriesSnapshot &s : series) {
        if (s.name != last_name) {
            if (!s.help.empty())
                os << "# HELP " << s.name << " " << s.help << "\n";
            os << "# TYPE " << s.name << " "
               << metricKindName(s.kind) << "\n";
            last_name = s.name;
        }
        if (s.kind != MetricKind::Histogram) {
            os << s.name << prometheusLabels(s.labels) << " "
               << formatNumber(s.value) << "\n";
            continue;
        }
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
            cumulative += s.hist.counts[b];
            std::string le = b < s.hist.bounds.size()
                                 ? formatBound(s.hist.bounds[b])
                                 : "+Inf";
            os << s.name << "_bucket"
               << prometheusLabelsWith(s.labels, "le", le) << " "
               << cumulative << "\n";
        }
        os << s.name << "_sum" << prometheusLabels(s.labels) << " "
           << formatNumber(s.hist.sum) << "\n";
        os << s.name << "_count" << prometheusLabels(s.labels) << " "
           << s.hist.count << "\n";
    }
}

void
exportJson(const Registry &registry, std::ostream &os)
{
    common::JsonWriter w(os);
    w.beginObject();
    w.beginArray("metrics");
    for (const SeriesSnapshot &s : registry.snapshot()) {
        w.beginObject();
        w.member("name", s.name);
        w.member("kind", metricKindName(s.kind));
        if (!s.help.empty())
            w.member("help", s.help);
        w.beginObject("labels");
        for (const auto &[k, v] : s.labels)
            w.member(k, v);
        w.endObject();
        if (s.kind != MetricKind::Histogram) {
            w.member("value", s.value);
        } else {
            w.member("count", static_cast<std::size_t>(s.hist.count));
            w.member("sum", s.hist.sum);
            w.member("min", s.hist.minimum);
            w.member("max", s.hist.maximum);
            w.member("p50", s.hist.quantile(0.50));
            w.member("p95", s.hist.quantile(0.95));
            w.member("p99", s.hist.quantile(0.99));
            w.beginArray("buckets");
            for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
                w.beginObject();
                if (b < s.hist.bounds.size())
                    w.member("le", s.hist.bounds[b]);
                else
                    w.member("le", "+Inf");
                w.member("count", static_cast<std::size_t>(
                                      s.hist.counts[b]));
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
exportCsv(const Registry &registry, std::ostream &os)
{
    os << "name,kind,labels,value,count,sum,p50,p95,p99\n";
    for (const SeriesSnapshot &s : registry.snapshot()) {
        std::string labels = labelsKey(s.labels);
        // Quote the label column: it contains commas and quotes.
        std::string quoted = "\"";
        for (char c : labels) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        os << s.name << "," << metricKindName(s.kind) << ","
           << quoted << ",";
        if (s.kind != MetricKind::Histogram) {
            os << formatNumber(s.value) << ",,,,,\n";
        } else {
            os << "," << s.hist.count << ","
               << formatNumber(s.hist.sum) << ","
               << formatNumber(s.hist.quantile(0.50)) << ","
               << formatNumber(s.hist.quantile(0.95)) << ","
               << formatNumber(s.hist.quantile(0.99)) << "\n";
        }
    }
}

void
writeSnapshot(const Registry &registry, const std::string &path,
              bool legacy_aliases)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics output file '", path, "'");
    if (common::endsWith(path, ".json"))
        exportJson(registry, out);
    else if (common::endsWith(path, ".csv"))
        exportCsv(registry, out);
    else
        exportPrometheus(registry, out, legacy_aliases);
}

bool
exportForCli(const common::CliArgs &args, const Registry &registry)
{
    std::string path = args.getString("metrics-out", "");
    if (path.empty())
        return false;
    writeSnapshot(registry, path,
                  args.getBool("metrics-legacy-aliases", false));
    inform("metrics snapshot (", registry.seriesCount(),
           " series) -> ", path);
    return true;
}

} // namespace toltiers::obs
