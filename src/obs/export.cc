#include "obs/export.hh"

#include <cinttypes>
#include <fstream>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::obs {

using common::fatal;
using common::inform;

namespace {

std::string
prometheusLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    return "{" + labelsKey(labels) + "}";
}

/** Append one extra label to a set (for the histogram `le` label). */
std::string
prometheusLabelsWith(const Labels &labels, const std::string &key,
                     const std::string &value)
{
    Labels extended = labels;
    extended.emplace_back(key, value);
    return prometheusLabels(extended);
}

std::string
formatNumber(double v)
{
    // Round-trippable shortest representation; Prometheus accepts
    // scientific notation.
    return common::strprintf("%.17g", v);
}

std::string
formatBound(double v)
{
    return common::strprintf("%g", v);
}

} // namespace

void
exportPrometheus(const Registry &registry, std::ostream &os)
{
    std::string last_name;
    for (const SeriesSnapshot &s : registry.snapshot()) {
        if (s.name != last_name) {
            if (!s.help.empty())
                os << "# HELP " << s.name << " " << s.help << "\n";
            os << "# TYPE " << s.name << " "
               << metricKindName(s.kind) << "\n";
            last_name = s.name;
        }
        if (s.kind != MetricKind::Histogram) {
            os << s.name << prometheusLabels(s.labels) << " "
               << formatNumber(s.value) << "\n";
            continue;
        }
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
            cumulative += s.hist.counts[b];
            std::string le = b < s.hist.bounds.size()
                                 ? formatBound(s.hist.bounds[b])
                                 : "+Inf";
            os << s.name << "_bucket"
               << prometheusLabelsWith(s.labels, "le", le) << " "
               << cumulative << "\n";
        }
        os << s.name << "_sum" << prometheusLabels(s.labels) << " "
           << formatNumber(s.hist.sum) << "\n";
        os << s.name << "_count" << prometheusLabels(s.labels) << " "
           << s.hist.count << "\n";
    }
}

void
exportJson(const Registry &registry, std::ostream &os)
{
    common::JsonWriter w(os);
    w.beginObject();
    w.beginArray("metrics");
    for (const SeriesSnapshot &s : registry.snapshot()) {
        w.beginObject();
        w.member("name", s.name);
        w.member("kind", metricKindName(s.kind));
        if (!s.help.empty())
            w.member("help", s.help);
        w.beginObject("labels");
        for (const auto &[k, v] : s.labels)
            w.member(k, v);
        w.endObject();
        if (s.kind != MetricKind::Histogram) {
            w.member("value", s.value);
        } else {
            w.member("count", static_cast<std::size_t>(s.hist.count));
            w.member("sum", s.hist.sum);
            w.member("min", s.hist.minimum);
            w.member("max", s.hist.maximum);
            w.member("p50", s.hist.quantile(0.50));
            w.member("p95", s.hist.quantile(0.95));
            w.member("p99", s.hist.quantile(0.99));
            w.beginArray("buckets");
            for (std::size_t b = 0; b < s.hist.counts.size(); ++b) {
                w.beginObject();
                if (b < s.hist.bounds.size())
                    w.member("le", s.hist.bounds[b]);
                else
                    w.member("le", "+Inf");
                w.member("count", static_cast<std::size_t>(
                                      s.hist.counts[b]));
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
exportCsv(const Registry &registry, std::ostream &os)
{
    os << "name,kind,labels,value,count,sum,p50,p95,p99\n";
    for (const SeriesSnapshot &s : registry.snapshot()) {
        std::string labels = labelsKey(s.labels);
        // Quote the label column: it contains commas and quotes.
        std::string quoted = "\"";
        for (char c : labels) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        os << s.name << "," << metricKindName(s.kind) << ","
           << quoted << ",";
        if (s.kind != MetricKind::Histogram) {
            os << formatNumber(s.value) << ",,,,,\n";
        } else {
            os << "," << s.hist.count << ","
               << formatNumber(s.hist.sum) << ","
               << formatNumber(s.hist.quantile(0.50)) << ","
               << formatNumber(s.hist.quantile(0.95)) << ","
               << formatNumber(s.hist.quantile(0.99)) << "\n";
        }
    }
}

void
writeSnapshot(const Registry &registry, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open metrics output file '", path, "'");
    if (common::endsWith(path, ".json"))
        exportJson(registry, out);
    else if (common::endsWith(path, ".csv"))
        exportCsv(registry, out);
    else
        exportPrometheus(registry, out);
}

bool
exportForCli(const common::CliArgs &args, const Registry &registry)
{
    std::string path = args.getString("metrics-out", "");
    if (path.empty())
        return false;
    writeSnapshot(registry, path);
    inform("metrics snapshot (", registry.seriesCount(),
           " series) -> ", path);
    return true;
}

} // namespace toltiers::obs
