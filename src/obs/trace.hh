/**
 * @file
 * Lightweight request tracing: per-request timelines of named,
 * nested spans.
 *
 * A Trace is the timeline of one request. Spans carry a start
 * offset and a duration in seconds relative to the trace origin and
 * may nest via parent ids. Two recording styles coexist, because
 * the repo mixes measured and modeled time:
 *
 *  - wall-clock spans (ScopedSpan) measure real elapsed time with
 *    common::Stopwatch — used for the control-plane work the
 *    service actually performs (rule matching, bookkeeping);
 *  - modeled spans (Trace::addSpan with explicit start/duration)
 *    carry the work-unit-derived latencies of the simulated service
 *    versions, so a trace reproduces the policy timeline the tier
 *    semantics define (sequential stages abut, raced stages
 *    overlap).
 *
 * Finished traces accumulate in the Tracer, which can drain them to
 * a JSONL log: one JSON object per line per trace, the schema
 * documented in README.md ("Observability").
 *
 * Causal propagation: a component that *originates* a request's
 * timeline (the front door, or TierService::handle when called
 * directly) starts the trace and creates the root `request` span;
 * everything downstream receives a TraceContext naming the trace,
 * the span to parent under, and the timeline offset at which the
 * callee's work begins. One request therefore yields ONE connected
 * span tree no matter how many layers (admission, batching, cache,
 * tier chain, retry/hedge legs) it crosses. The ttlint rule
 * `span-context-discipline` enforces that request-path functions
 * which accept a TraceContext never open orphan root spans.
 */

#ifndef TOLTIERS_OBS_TRACE_HH
#define TOLTIERS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.hh"

namespace toltiers::common {
class CliArgs;
} // namespace toltiers::common

namespace toltiers::obs {

/** One completed span within a trace. */
struct SpanRecord
{
    std::uint64_t id = 0;
    std::uint64_t parent = 0; //!< 0 = root (no parent).
    std::string name;
    double start = 0.0;    //!< Seconds from the trace origin.
    double duration = 0.0; //!< Seconds.
    std::vector<std::pair<std::string, std::string>> attrs;
};

/** One request's finished timeline. */
struct TraceRecord
{
    std::uint64_t traceId = 0;
    std::vector<SpanRecord> spans;

    /** Total of the root spans' durations (parent == 0). */
    double rootDuration() const;
};

class Trace;

/**
 * Propagated span context: which trace to record into, which span
 * to parent new spans under, and where on the root timeline the
 * callee's work begins. A default-constructed context is inactive
 * and every consumer treats it as "tracing off". The context does
 * not own the trace; the originator that started it finishes it.
 */
struct TraceContext
{
    Trace *trace = nullptr;
    std::uint64_t parent = 0; //!< Span id to nest children under.
    double offset = 0.0; //!< Timeline offset of the callee's work.

    bool active() const { return trace != nullptr; }
};

/**
 * Builder for one request's timeline. Not thread-safe; one trace
 * belongs to one request on one thread (sequential handoff across
 * threads — submit thread to pool worker — is fine). The trace
 * origin (offset zero) is the construction instant for wall-clock
 * spans; modeled spans choose their own offsets.
 */
class Trace
{
  public:
    explicit Trace(std::uint64_t trace_id);

    std::uint64_t traceId() const { return record_.traceId; }

    /**
     * Record a modeled span with an explicit timeline position.
     * @return the span id, usable as a parent for nested spans.
     */
    std::uint64_t addSpan(const std::string &name, double start,
                          double duration,
                          std::uint64_t parent = 0);

    /** Attach a key/value attribute to an existing span. */
    void annotate(std::uint64_t span_id, const std::string &key,
                  const std::string &value);

    /**
     * Overwrite an existing span's duration — how an originator
     * closes a root span whose extent only a callee knows (the
     * front door opens `request` at admission; the tier chain sets
     * its final length). panic() on an unknown id.
     */
    void setDuration(std::uint64_t span_id, double duration);

    /** Seconds since the trace origin (for wall-clock spans). */
    double elapsed() const { return clock_.seconds(); }

    /** The record built so far (finalized by Tracer::finish). */
    const TraceRecord &record() const { return record_; }

  private:
    friend class ScopedSpan;
    friend class Tracer;

    TraceRecord record_;
    std::uint64_t nextSpan_ = 1;
    common::Stopwatch clock_;
};

/**
 * RAII wall-clock span: starts at construction, closes at
 * destruction (or close()), measuring real elapsed time against
 * the owning trace's origin.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Trace &trace, const std::string &name,
               std::uint64_t parent = 0);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** The span id (for nesting children under this span). */
    std::uint64_t id() const { return id_; }

    /** Close early; idempotent. */
    void close();

  private:
    Trace &trace_;
    std::uint64_t id_ = 0;
    double start_ = 0.0;
    bool open_ = true;
};

/**
 * Thread-safe collector of finished traces. Assigns trace ids and
 * buffers completed records until they are drained or exported.
 */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Begin a new trace with a fresh id. */
    Trace startTrace();

    /**
     * Head-based sampling: keep every n-th request's trace. 1 (the
     * default) traces everything, 0 disables tracing entirely. The
     * decision counter is a plain atomic, so which requests are
     * kept is deterministic under a fixed submission order.
     */
    void setSampleEvery(std::uint64_t n);
    std::uint64_t sampleEvery() const;

    /**
     * Consume one sampling decision: true when the caller should
     * start (and record) a trace for the request at hand. The
     * originator calls this exactly once per request.
     */
    bool shouldSample();

    /** File a completed trace. Thread-safe. */
    void finish(Trace &&trace);

    /** Number of buffered traces. */
    std::size_t traceCount() const;

    /** Remove and return every buffered trace. */
    std::vector<TraceRecord> drain();

    /**
     * Write every buffered trace as JSONL (one object per line)
     * without draining. fatal() if the file cannot be opened.
     */
    void exportJsonl(std::ostream &os) const;
    void exportJsonl(const std::string &path) const;

  private:
    mutable std::mutex mu_;
    std::atomic<std::uint64_t> nextTrace_{1};
    std::atomic<std::uint64_t> sampleEvery_{1};
    std::atomic<std::uint64_t> sampleClock_{0};
    std::vector<TraceRecord> traces_;
};

/**
 * Standard CLI wiring: if the parsed args carry --trace-out=PATH,
 * export the tracer's buffered traces there as JSONL and inform()
 * about it. Returns true if a log was written.
 */
bool exportTracesForCli(const common::CliArgs &args,
                        const Tracer &tracer);

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_TRACE_HH
