/**
 * @file
 * Lightweight request tracing: per-request timelines of named,
 * nested spans.
 *
 * A Trace is the timeline of one request. Spans carry a start
 * offset and a duration in seconds relative to the trace origin and
 * may nest via parent ids. Two recording styles coexist, because
 * the repo mixes measured and modeled time:
 *
 *  - wall-clock spans (ScopedSpan) measure real elapsed time with
 *    common::Stopwatch — used for the control-plane work the
 *    service actually performs (rule matching, bookkeeping);
 *  - modeled spans (Trace::addSpan with explicit start/duration)
 *    carry the work-unit-derived latencies of the simulated service
 *    versions, so a trace reproduces the policy timeline the tier
 *    semantics define (sequential stages abut, raced stages
 *    overlap).
 *
 * Finished traces accumulate in the Tracer, which can drain them to
 * a JSONL log: one JSON object per line per trace, the schema
 * documented in README.md ("Observability").
 */

#ifndef TOLTIERS_OBS_TRACE_HH
#define TOLTIERS_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.hh"

namespace toltiers::common {
class CliArgs;
} // namespace toltiers::common

namespace toltiers::obs {

/** One completed span within a trace. */
struct SpanRecord
{
    std::uint64_t id = 0;
    std::uint64_t parent = 0; //!< 0 = root (no parent).
    std::string name;
    double start = 0.0;    //!< Seconds from the trace origin.
    double duration = 0.0; //!< Seconds.
    std::vector<std::pair<std::string, std::string>> attrs;
};

/** One request's finished timeline. */
struct TraceRecord
{
    std::uint64_t traceId = 0;
    std::vector<SpanRecord> spans;

    /** Total of the root spans' durations (parent == 0). */
    double rootDuration() const;
};

/**
 * Builder for one request's timeline. Not thread-safe; one trace
 * belongs to one request on one thread. The trace origin (offset
 * zero) is the construction instant for wall-clock spans; modeled
 * spans choose their own offsets.
 */
class Trace
{
  public:
    explicit Trace(std::uint64_t trace_id);

    std::uint64_t traceId() const { return record_.traceId; }

    /**
     * Record a modeled span with an explicit timeline position.
     * @return the span id, usable as a parent for nested spans.
     */
    std::uint64_t addSpan(const std::string &name, double start,
                          double duration,
                          std::uint64_t parent = 0);

    /** Attach a key/value attribute to an existing span. */
    void annotate(std::uint64_t span_id, const std::string &key,
                  const std::string &value);

    /** Seconds since the trace origin (for wall-clock spans). */
    double elapsed() const { return clock_.seconds(); }

    /** The record built so far (finalized by Tracer::finish). */
    const TraceRecord &record() const { return record_; }

  private:
    friend class ScopedSpan;
    friend class Tracer;

    TraceRecord record_;
    std::uint64_t nextSpan_ = 1;
    common::Stopwatch clock_;
};

/**
 * RAII wall-clock span: starts at construction, closes at
 * destruction (or close()), measuring real elapsed time against
 * the owning trace's origin.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Trace &trace, const std::string &name,
               std::uint64_t parent = 0);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** The span id (for nesting children under this span). */
    std::uint64_t id() const { return id_; }

    /** Close early; idempotent. */
    void close();

  private:
    Trace &trace_;
    std::uint64_t id_ = 0;
    double start_ = 0.0;
    bool open_ = true;
};

/**
 * Thread-safe collector of finished traces. Assigns trace ids and
 * buffers completed records until they are drained or exported.
 */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Begin a new trace with a fresh id. */
    Trace startTrace();

    /** File a completed trace. Thread-safe. */
    void finish(Trace &&trace);

    /** Number of buffered traces. */
    std::size_t traceCount() const;

    /** Remove and return every buffered trace. */
    std::vector<TraceRecord> drain();

    /**
     * Write every buffered trace as JSONL (one object per line)
     * without draining. fatal() if the file cannot be opened.
     */
    void exportJsonl(std::ostream &os) const;
    void exportJsonl(const std::string &path) const;

  private:
    mutable std::mutex mu_;
    std::atomic<std::uint64_t> nextTrace_{1};
    std::vector<TraceRecord> traces_;
};

/**
 * Standard CLI wiring: if the parsed args carry --trace-out=PATH,
 * export the tracer's buffered traces there as JSONL and inform()
 * about it. Returns true if a log was written.
 */
bool exportTracesForCli(const common::CliArgs &args,
                        const Tracer &tracer);

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_TRACE_HH
