/**
 * @file
 * Stage-latency attribution over finished traces.
 *
 * A tier promise is only as strong as the measured distribution
 * behind it, and "where did this request's p99 go?" needs the wall
 * time decomposed into named stages. This module defines the
 * canonical stage vocabulary (admission, batch-wait, cache, route,
 * execute, retry-backoff, hedge-overlap), the interval arithmetic
 * that derives busy/gap/overlap time from a set of attempt
 * intervals, the walker that decomposes one span tree into a
 * StageBreakdown, and the critical-path walker that returns the
 * longest causal chain through the tree.
 *
 * The additive identity the decomposition guarantees: admission +
 * batch-wait + route + cache + execute + retry-backoff equals the
 * root span's duration exactly (hedge-overlap is time covered by
 * two or more concurrent legs — a subset of execute, reported
 * separately, never double-counted into the sum). The live serving
 * path records the same quantities into the per-stage
 * `tt_stage_seconds{stage=...}` histograms, and tools/ttrace
 * re-derives them offline from the JSONL log; both sides share
 * this code so they can never disagree.
 */

#ifndef TOLTIERS_OBS_ATTRIBUTION_HH
#define TOLTIERS_OBS_ATTRIBUTION_HH

#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace toltiers::obs {

/** Canonical stage label values for tt_stage_seconds{stage=...}. */
namespace stage {
inline constexpr const char *kAdmission = "admission";
inline constexpr const char *kBatchWait = "batch-wait";
inline constexpr const char *kCache = "cache";
inline constexpr const char *kRoute = "route";
inline constexpr const char *kExecute = "execute";
inline constexpr const char *kRetryBackoff = "retry-backoff";
inline constexpr const char *kHedgeOverlap = "hedge-overlap";
inline constexpr const char *kNetRead = "net-read";
inline constexpr const char *kNetWrite = "net-write";
} // namespace stage

/** One half-open busy interval [start, end) on a request timeline. */
struct Interval
{
    double start = 0.0;
    double end = 0.0;
};

/** Coverage decomposition of a set of (overlapping) intervals. */
struct IntervalStats
{
    double unionSeconds = 0.0;   //!< Covered by at least one leg.
    double gapSeconds = 0.0;     //!< Inside the window, covered by none.
    double overlapSeconds = 0.0; //!< Covered by two or more legs.
    double windowSeconds = 0.0;  //!< max end minus min start.
};

/** Sweep the intervals; empty input yields all zeros. */
IntervalStats intervalStats(std::vector<Interval> intervals);

/** Per-request wall-time decomposition into the named stages. */
struct StageBreakdown
{
    double admission = 0.0;    //!< Front-door queue wait.
    double batchWait = 0.0;    //!< Adaptive-batcher queue wait.
    double route = 0.0;        //!< Routing-rule match.
    double cache = 0.0;        //!< Result-cache lookup.
    double execute = 0.0;      //!< Union of attempt busy time.
    double retryBackoff = 0.0; //!< Execution window not covered by
                               //!< any leg (backoff gaps).
    double hedgeOverlap = 0.0; //!< Covered by >= 2 concurrent legs
                               //!< (subset of execute; not additive).

    /** Sum of the additive stages (everything but hedgeOverlap). */
    double total() const
    {
        return admission + batchWait + route + cache + execute +
               retryBackoff;
    }
};

/**
 * Decompose one finished trace into its stage breakdown. Stages the
 * request never crossed (no batcher, no cache, cache hit) read 0.
 * The root is the span with parent 0; a record without one (or
 * with no spans) yields all zeros.
 */
StageBreakdown attributeTrace(const TraceRecord &record);

/**
 * The critical path: the chain from the root span to a leaf,
 * descending at every node into the child whose end time
 * (start + duration) is latest — the longest causal chain through
 * the tree. Pointers alias `record`; empty when the record has no
 * root span.
 */
std::vector<const SpanRecord *>
criticalPath(const TraceRecord &record);

/** Bucket bounds for the stage histograms: 100ns .. 10s, log-spaced
 * (queue waits are microseconds; modeled stage runs are seconds). */
std::vector<double> stageSecondsBounds();

/** Record one per-stage sample into tt_stage_seconds{stage=...}. */
void recordStageSeconds(Registry &registry, const char *stage_name,
                        double seconds);

} // namespace toltiers::obs

#endif // TOLTIERS_OBS_ATTRIBUTION_HH
