/**
 * @file
 * Tiny command-line flag parser used by benches and examples.
 *
 * Accepts flags of the form --key=value or --key value, plus bare
 * --flag booleans. Unknown flags are fatal so that typos in sweep
 * scripts fail loudly instead of silently running defaults.
 */

#ifndef TOLTIERS_COMMON_CLI_HH
#define TOLTIERS_COMMON_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace toltiers::common {

/** Parsed command line: flag map plus positional arguments. */
class CliArgs
{
  public:
    /**
     * Parse argv. @param known the set of accepted flag names
     * (without the leading dashes); pass an empty set to accept any.
     */
    CliArgs(int argc, const char *const *argv,
            const std::vector<std::string> &known = {});

    /** True if the flag was present. */
    bool has(const std::string &key) const;

    /** String value, or fallback if absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Integer value, or fallback if absent; fatal() on parse error. */
    long getInt(const std::string &key, long fallback) const;

    /** Double value, or fallback if absent; fatal() on parse error. */
    double getDouble(const std::string &key, double fallback) const;

    /** Boolean flag; bare "--flag" counts as true. */
    bool getBool(const std::string &key, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

/**
 * The telemetry flags every toltiers binary accepts, appended to a
 * binary's own flag names: --log-level (quiet|warn|inform|debug),
 * --metrics-out (metrics snapshot path, format by extension),
 * --trace-out (JSONL trace log path), and --kernel-backend
 * (reference|blocked GEMM selection, applied by the bench harness).
 */
std::vector<std::string>
telemetryFlags(std::vector<std::string> extra = {});

/** Apply --log-level to the global log threshold if present. */
void applyLogLevel(const CliArgs &args);

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_CLI_HH
