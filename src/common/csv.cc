#include "common/csv.hh"

#include <sstream>

#include "common/logging.hh"

namespace toltiers::common {

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_)
        fatal("cannot open CSV output file: ", path);
}

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::string &label,
                    const std::vector<double> &values)
{
    out_ << escape(label);
    std::ostringstream oss;
    for (double v : values) {
        oss.str("");
        oss << v;
        out_ << ',' << oss.str();
    }
    out_ << '\n';
}

} // namespace toltiers::common
