/**
 * @file
 * Minimal streaming JSON writer for experiment result dumps.
 *
 * Supports the subset needed by the benchmark harness: nested
 * objects/arrays, string/number/bool members, correct escaping.
 */

#ifndef TOLTIERS_COMMON_JSON_HH
#define TOLTIERS_COMMON_JSON_HH

#include <ostream>
#include <string>
#include <vector>

namespace toltiers::common {

/**
 * Streaming JSON writer. Callers open/close objects and arrays in a
 * strictly nested fashion; the writer tracks separators and nesting
 * depth and panics on unbalanced close calls.
 */
class JsonWriter
{
  public:
    /** Write to the given stream; the stream must outlive the writer. */
    explicit JsonWriter(std::ostream &os);

    /** Open the root or a nested anonymous object (array element). */
    void beginObject();
    /** Open a named object member inside the current object. */
    void beginObject(const std::string &key);
    /** Close the innermost object. */
    void endObject();

    /** Open an anonymous array (array element). */
    void beginArray();
    /** Open a named array member. */
    void beginArray(const std::string &key);
    /** Close the innermost array. */
    void endArray();

    /** Named scalar members. */
    void member(const std::string &key, const std::string &value);
    void member(const std::string &key, const char *value);
    void member(const std::string &key, double value);
    void member(const std::string &key, int value);
    void member(const std::string &key, std::size_t value);
    void member(const std::string &key, bool value);

    /** Anonymous scalar array elements. */
    void value(const std::string &v);
    void value(double v);
    void value(bool v);

    /** Escape a string for inclusion inside JSON quotes. */
    static std::string escape(const std::string &s);

  private:
    void comma();
    void key(const std::string &k);
    void number(double v);

    std::ostream &os_;
    std::vector<bool> first_; // per-nesting-level "no element yet" flag
};

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_JSON_HH
