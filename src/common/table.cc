#include "common/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::common {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size()) {
        panic("table row has ", row.size(), " cells, header has ",
              header_.size());
    }
    rows_.push_back(std::move(row));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatFixed(v, precision));
    addRow(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::size_t ncols = header_.size();
    for (const auto &row : rows_)
        ncols = std::max(ncols, row.size());

    std::vector<std::size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &row : rows_)
        measure(row);

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                os << "  ";
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(widths[c] - row[c].size(), ' ');
            }
        }
        os << '\n';
    };

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (ncols > 0 ? ncols - 1 : 0);

    if (!title_.empty()) {
        os << title_ << '\n';
        os << std::string(std::max(title_.size(), total), '-') << '\n';
    }
    if (!header_.empty()) {
        emitRow(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emitRow(row);
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace toltiers::common
