/**
 * @file
 * Clang thread-safety analysis attribute macros.
 *
 * These map the standard capability-analysis attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) onto
 * no-ops for every compiler that lacks them, so annotated code
 * builds identically under gcc while a clang `-Wthread-safety`
 * build statically proves the locking discipline: every
 * `GUARDED_BY` member is touched only with its mutex held, every
 * `REQUIRES` function is called only under the named capability,
 * and every scoped lock releases what it acquired.
 *
 * The annotations attach to `common::Mutex` and its RAII wrappers
 * (common/mutex.hh) rather than `std::mutex` directly, because
 * libstdc++'s mutex types carry no capability attributes — the
 * analysis can only follow capabilities it can see. CI runs the
 * clang job with warnings promoted to errors; ttlint's lock-order
 * and blocking-under-lock analyses cover the cross-TU half of the
 * same contract.
 */

#ifndef TOLTIERS_COMMON_THREAD_ANNOTATIONS_HH
#define TOLTIERS_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#define TT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TT_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Marks a type as a capability (e.g. a mutex). */
#define CAPABILITY(x) TT_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires on construction and releases
 * on destruction. */
#define SCOPED_CAPABILITY TT_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with the capability held. */
#define GUARDED_BY(x) TT_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by the capability. */
#define PT_GUARDED_BY(x) TT_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capabilities held. */
#define REQUIRES(...) \
    TT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that must be called with the capabilities NOT held. */
#define EXCLUDES(...) \
    TT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function that acquires the capability and does not release it. */
#define ACQUIRE(...) \
    TT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases a held capability. */
#define RELEASE(...) \
    TT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns `ret`. */
#define TRY_ACQUIRE(ret, ...) \
    TT_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Function returning a reference to the named capability. */
#define RETURN_CAPABILITY(x) \
    TT_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: the function's locking is out of analysis scope. */
#define NO_THREAD_SAFETY_ANALYSIS \
    TT_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // TOLTIERS_COMMON_THREAD_ANNOTATIONS_HH
