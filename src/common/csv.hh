/**
 * @file
 * Minimal CSV writer so benchmark binaries can dump the raw series
 * behind each figure for external plotting.
 */

#ifndef TOLTIERS_COMMON_CSV_HH
#define TOLTIERS_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace toltiers::common {

/**
 * Streams rows into a CSV file; fields containing commas, quotes, or
 * newlines are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /** Open (truncate) the target file; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write a row of raw string fields. */
    void writeRow(const std::vector<std::string> &fields);

    /** Write a labelled row of numeric fields. */
    void writeRow(const std::string &label,
                  const std::vector<double> &values);

    /** Escape a single field per RFC 4180. */
    static std::string escape(const std::string &field);

  private:
    std::ofstream out_;
};

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_CSV_HH
