/**
 * @file
 * Capability-annotated mutex and RAII lock wrappers.
 *
 * `common::Mutex` is a `std::mutex` carrying clang thread-safety
 * capability attributes (common/thread_annotations.hh), and
 * `MutexLock` / `UniqueLock` are the annotated counterparts of
 * `std::lock_guard` / `std::unique_lock`. Concurrent subsystems
 * whose members are `GUARDED_BY` a mutex use these so a clang
 * `-Wthread-safety` build proves the guard discipline at compile
 * time; under any other compiler they compile to exactly the std
 * primitives they wrap.
 *
 * Condition variables keep using `std::condition_variable`: a
 * `UniqueLock` exposes its underlying `std::unique_lock` via
 * `native()` for `cv.wait(lock.native())`. The wait releases and
 * reacquires the mutex symmetrically, so the capability state on
 * either side of the call is unchanged — the analysis never needs
 * to see inside.
 *
 * These wrappers are the one sanctioned place that calls
 * `.lock()` / `.unlock()` on a raw mutex; everywhere else ttlint's
 * no-naked-mutex rule forbids it, and ttlint treats `Mutex` as a
 * mutex type and `MutexLock` / `UniqueLock` as lock wrappers in
 * its lock-order and blocking-under-lock analyses.
 */

#ifndef TOLTIERS_COMMON_MUTEX_HH
#define TOLTIERS_COMMON_MUTEX_HH

#include <mutex>

#include "common/thread_annotations.hh"

namespace toltiers::common {

/** A `std::mutex` the thread-safety analysis can follow. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Acquire. Prefer MutexLock/UniqueLock; this exists for the
     * wrappers and for adopting interfaces that need it. */
    void
    lock() ACQUIRE()
    {
        // TTLINT(off:no-naked-mutex): this wrapper IS the sanctioned RAII layer.
        mu_.lock();
    }

    /** Release a held mutex. */
    void
    unlock() RELEASE()
    {
        // TTLINT(off:no-naked-mutex): this wrapper IS the sanctioned RAII layer.
        mu_.unlock();
    }

    /** Try to acquire; true on success. */
    bool
    try_lock() TRY_ACQUIRE(true)
    {
        // TTLINT(off:no-naked-mutex): this wrapper IS the sanctioned RAII layer.
        return mu_.try_lock();
    }

    /** The wrapped `std::mutex`, for `std::unique_lock` /
     * condition-variable plumbing only. */
    std::mutex &
    native()
    {
        return mu_;
    }

  private:
    std::mutex mu_;
};

/** RAII exclusive lock over a Mutex (`std::lock_guard` shape):
 * acquires in the constructor, releases in the destructor, no
 * unlock in between. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    /** Acquire `mu` for the lifetime of this object. */
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : mu_(mu)
    {
        // TTLINT(off:no-naked-mutex): this wrapper IS the sanctioned RAII layer.
        mu_.lock();
    }

    ~MutexLock() RELEASE()
    {
        // TTLINT(off:no-naked-mutex): this wrapper IS the sanctioned RAII layer.
        mu_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * RAII lock over a Mutex with explicit unlock()/lock()
 * (`std::unique_lock` shape), for condition-variable waits and
 * drop-the-lock-around-a-callback patterns. The destructor
 * releases the mutex if it is still held.
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    /** Acquire `mu`; hold it until unlock() or destruction. */
    explicit UniqueLock(Mutex &mu) ACQUIRE(mu) : lk_(mu.native()) {}

    ~UniqueLock() RELEASE() {} // lk_ releases if still held

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** Release the mutex before the scope ends. */
    void
    unlock() RELEASE()
    {
        lk_.unlock();
    }

    /** Reacquire after an unlock(). */
    void
    lock() ACQUIRE()
    {
        lk_.lock();
    }

    /** The wrapped lock, for `cv.wait(lock.native())`. The wait's
     * release/reacquire is symmetric, so the capability state is
     * unchanged across the call. */
    std::unique_lock<std::mutex> &
    native()
    {
        return lk_;
    }

  private:
    std::unique_lock<std::mutex> lk_;
};

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_MUTEX_HH
