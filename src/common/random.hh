/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (corpus synthesis, network
 * initialization, bootstrapping) draw from an explicitly seeded Pcg32
 * instance so that every experiment is reproducible bit-for-bit.
 */

#ifndef TOLTIERS_COMMON_RANDOM_HH
#define TOLTIERS_COMMON_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace toltiers::common {

/**
 * PCG-XSH-RR 32-bit pseudo-random generator (O'Neill, 2014).
 *
 * Small state (128 bits), excellent statistical quality, and a
 * platform-independent output sequence, unlike std::mt19937 whose
 * distributions are implementation defined.
 */
class Pcg32
{
  public:
    /** Construct from a seed and an optional stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit output. */
    std::uint32_t nextU32();

    /** Uniform integer in [0, bound). bound must be positive. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal deviate (Box-Muller, cached spare). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stdev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @param weights Unnormalized weights; at least one must be > 0.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index-addressable container. */
    template <typename Vec>
    void
    shuffle(Vec &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(static_cast<std::uint32_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample k indices from [0, n) with replacement (bootstrap draw).
     */
    std::vector<std::size_t> sampleWithReplacement(std::size_t n,
                                                   std::size_t k);

    /**
     * Sample k distinct indices from [0, n) without replacement.
     * Requires k <= n.
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /** Fork a child generator with a decorrelated stream. */
    Pcg32 split();

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_RANDOM_HH
