/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments) and exits cleanly with an error
 * code, while panic() is for internal invariant violations (library
 * bugs) and aborts. inform()/warn() report status without stopping.
 *
 * Emission is thread-safe and each line is prefixed with an
 * ISO-8601 UTC timestamp and a small per-thread id
 * (`2024-01-01T00:00:00.000Z t1 [info] ...`), so interleaved logs
 * from the simulator and the service remain attributable.
 */

#ifndef TOLTIERS_COMMON_LOGGING_HH
#define TOLTIERS_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace toltiers::common {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Set the global verbosity threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/**
 * Parse a level name ("quiet" | "warn" | "inform"/"info" |
 * "debug"); fatal() on unknown names. Used by the --log-level flag.
 */
LogLevel parseLogLevel(const std::string &name);

namespace detail {

/** Emit one formatted log line to stderr. */
void emit(const char *tag, const std::string &msg);

/** Stringify a pack of arguments via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void fatalExit(const std::string &msg);
[[noreturn]] void panicAbort(const std::string &msg);

} // namespace detail

/**
 * Report a status message the user should see but not worry about.
 */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/**
 * Report a condition that might indicate a problem but does not stop
 * execution.
 */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Debug-level trace message, dropped unless LogLevel::Debug is set. */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug", detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate because of a user error (bad configuration or arguments).
 * Exits with status 1; never returns.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit(detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate because of an internal library bug (a violated invariant
 * that no user input should be able to trigger). Aborts; never returns.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicAbort(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define TT_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::toltiers::common::panic("assertion failed: " #cond " ",     \
                                      ##__VA_ARGS__);                     \
        }                                                                 \
    } while (0)

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_LOGGING_HH
