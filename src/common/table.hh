/**
 * @file
 * Column-aligned plain-text table printer used by the benchmark
 * harness to reproduce the paper's tables and figure series.
 */

#ifndef TOLTIERS_COMMON_TABLE_HH
#define TOLTIERS_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace toltiers::common {

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns, an optional title, and a header separator.
 */
class Table
{
  public:
    /** Construct with an optional table title. */
    explicit Table(std::string title = "");

    /** Set the header row. Column count is fixed by this call. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count if set. */
    void addRow(std::vector<std::string> row);

    /** Convenience: append a row of doubles at fixed precision. */
    void addRow(const std::string &label,
                const std::vector<double> &values, int precision = 3);

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render to the stream, including title and separators. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_TABLE_HH
