#include "common/cli.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"

namespace toltiers::common {

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::vector<std::string> &known)
{
    auto is_known = [&](const std::string &k) {
        return known.empty() ||
               std::find(known.begin(), known.end(), k) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string key, value;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            key = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            key = body;
            // "--key value" form: consume the next token if it is not
            // itself a flag.
            if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (!is_known(key))
            fatal("unknown flag --", key);
        flags_[key] = value;
    }
}

bool
CliArgs::has(const std::string &key) const
{
    return flags_.count(key) > 0;
}

std::string
CliArgs::getString(const std::string &key,
                   const std::string &fallback) const
{
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
}

long
CliArgs::getInt(const std::string &key, long fallback) const
{
    auto it = flags_.find(key);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --", key, " expects an integer, got '", it->second,
              "'");
    return v;
}

double
CliArgs::getDouble(const std::string &key, double fallback) const
{
    auto it = flags_.find(key);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --", key, " expects a number, got '", it->second,
              "'");
    return v;
}

std::vector<std::string>
telemetryFlags(std::vector<std::string> extra)
{
    extra.push_back("log-level");
    extra.push_back("metrics-out");
    extra.push_back("metrics-legacy-aliases");
    extra.push_back("trace-out");
    extra.push_back("kernel-backend");
    return extra;
}

void
applyLogLevel(const CliArgs &args)
{
    if (args.has("log-level"))
        setLogLevel(parseLogLevel(args.getString("log-level", "")));
}

bool
CliArgs::getBool(const std::string &key, bool fallback) const
{
    auto it = flags_.find(key);
    if (it == flags_.end())
        return fallback;
    std::string v = toLower(it->second);
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("flag --", key, " expects a boolean, got '", it->second, "'");
}

} // namespace toltiers::common
