#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace toltiers::common {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    nextU32();
    state_ += seed;
    nextU32();
}

std::uint32_t
Pcg32::nextU32()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    TT_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = nextU32();
        if (r >= threshold)
            return r % bound;
    }
}

double
Pcg32::nextDouble()
{
    return nextU32() * (1.0 / 4294967296.0);
}

double
Pcg32::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

int
Pcg32::uniformInt(int lo, int hi)
{
    TT_ASSERT(lo <= hi, "uniformInt requires lo <= hi");
    auto span = static_cast<std::uint32_t>(hi - lo) + 1u;
    return lo + static_cast<int>(nextBounded(span));
}

double
Pcg32::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return u * mul;
}

double
Pcg32::gaussian(double mean, double stdev)
{
    return mean + stdev * gaussian();
}

bool
Pcg32::bernoulli(double p)
{
    return nextDouble() < p;
}

std::size_t
Pcg32::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        TT_ASSERT(w >= 0.0, "discrete weights must be non-negative");
        total += w;
    }
    TT_ASSERT(total > 0.0, "discrete weights must not all be zero");
    double x = nextDouble() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (x < acc)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Pcg32::sampleWithReplacement(std::size_t n, std::size_t k)
{
    TT_ASSERT(n > 0, "cannot sample from an empty population");
    std::vector<std::size_t> out(k);
    for (std::size_t i = 0; i < k; ++i)
        out[i] = nextBounded(static_cast<std::uint32_t>(n));
    return out;
}

std::vector<std::size_t>
Pcg32::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    TT_ASSERT(k <= n, "sampleWithoutReplacement requires k <= n");
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i)
        pool[i] = i;
    // Partial Fisher-Yates: the first k slots are the sample.
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j =
            i + nextBounded(static_cast<std::uint32_t>(n - i));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

Pcg32
Pcg32::split()
{
    std::uint64_t seed =
        (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    std::uint64_t stream =
        (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    return Pcg32(seed, stream);
}

} // namespace toltiers::common
