#include "common/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace toltiers::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Inform};

/** Serializes emission so interleaved threads produce whole lines. */
std::mutex g_emit_mutex;

/** Small stable per-thread id (in registration order, from 1). */
int
threadId()
{
    static std::atomic<int> next{1};
    thread_local int id = next.fetch_add(1);
    return id;
}

/** ISO-8601 UTC timestamp with millisecond resolution. */
std::string
timestamp()
{
    using namespace std::chrono;
    auto now = system_clock::now();
    std::time_t secs = system_clock::to_time_t(now);
    auto millis =
        duration_cast<milliseconds>(now.time_since_epoch()).count() %
        1000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[48];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(millis));
    return buf;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "quiet")
        return LogLevel::Quiet;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "debug")
        return LogLevel::Debug;
    fatal("unknown log level '", name,
          "' (expected quiet|warn|inform|debug)");
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fprintf(stderr, "%s t%d [%s] %s\n", timestamp().c_str(),
                 threadId(), tag, msg.c_str());
}

void
fatalExit(const std::string &msg)
{
    emit("fatal", msg);
    std::exit(1);
}

void
panicAbort(const std::string &msg)
{
    emit("panic", msg);
    std::abort();
}

} // namespace detail

} // namespace toltiers::common
