#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace toltiers::common {

namespace {

LogLevel g_level = LogLevel::Inform;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
fatalExit(const std::string &msg)
{
    std::fprintf(stderr, "[fatal] %s\n", msg.c_str());
    std::exit(1);
}

void
panicAbort(const std::string &msg)
{
    std::fprintf(stderr, "[panic] %s\n", msg.c_str());
    std::abort();
}

} // namespace detail

} // namespace toltiers::common
