#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace toltiers::common {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (first_.empty())
        return;
    if (!first_.back())
        os_ << ',';
    first_.back() = false;
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    os_ << '"' << escape(k) << "\":";
}

void
JsonWriter::number(double v)
{
    if (std::isnan(v) || std::isinf(v)) {
        os_ << "null";
        return;
    }
    // Shortest representation that parses back to the same double,
    // so readers (the ttrace trace-log reader in particular)
    // reconstruct values exactly without paying 17 digits for every
    // cleanly-representable number.
    char buf[32];
    for (int precision = 12; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    os_ << buf;
}

void
JsonWriter::beginObject()
{
    comma();
    os_ << '{';
    first_.push_back(true);
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    os_ << '{';
    first_.push_back(true);
}

void
JsonWriter::endObject()
{
    TT_ASSERT(!first_.empty(), "endObject with no open scope");
    os_ << '}';
    first_.pop_back();
}

void
JsonWriter::beginArray()
{
    comma();
    os_ << '[';
    first_.push_back(true);
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    os_ << '[';
    first_.push_back(true);
}

void
JsonWriter::endArray()
{
    TT_ASSERT(!first_.empty(), "endArray with no open scope");
    os_ << ']';
    first_.pop_back();
}

void
JsonWriter::member(const std::string &k, const std::string &v)
{
    key(k);
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::member(const std::string &k, const char *v)
{
    member(k, std::string(v));
}

void
JsonWriter::member(const std::string &k, double v)
{
    key(k);
    number(v);
}

void
JsonWriter::member(const std::string &k, int v)
{
    key(k);
    os_ << v;
}

void
JsonWriter::member(const std::string &k, std::size_t v)
{
    key(k);
    os_ << v;
}

void
JsonWriter::member(const std::string &k, bool v)
{
    key(k);
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(double v)
{
    comma();
    number(v);
}

void
JsonWriter::value(bool v)
{
    comma();
    os_ << (v ? "true" : "false");
}

} // namespace toltiers::common
