#include "common/strings.hh"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace toltiers::common {

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
formatFixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    return formatFixed(fraction * 100.0, precision) + "%";
}

std::string
formatSi(double v, int precision)
{
    static const char *suffixes[] = {"", "k", "M", "G", "T"};
    int idx = 0;
    double av = std::fabs(v);
    while (av >= 1000.0 && idx < 4) {
        av /= 1000.0;
        v /= 1000.0;
        ++idx;
    }
    return formatFixed(v, precision) + suffixes[idx];
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace toltiers::common
