/**
 * @file
 * Small string utilities shared across the library.
 */

#ifndef TOLTIERS_COMMON_STRINGS_HH
#define TOLTIERS_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace toltiers::common {

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty tokens are dropped. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if s ends with the given suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Join the pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

/** Fixed-precision decimal formatting (printf %.*f). */
std::string formatFixed(double v, int precision);

/** Format as a percentage with the given precision, e.g. "12.3%". */
std::string formatPercent(double fraction, int precision = 1);

/** Human-readable SI formatting, e.g. 1530 -> "1.53k". */
std::string formatSi(double v, int precision = 2);

/** printf-style formatting into a std::string. */
std::string
strprintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_STRINGS_HH
