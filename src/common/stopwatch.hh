/**
 * @file
 * Wall-clock stopwatch used to report measured (as opposed to
 * simulated work-unit) latencies.
 */

#ifndef TOLTIERS_COMMON_STOPWATCH_HH
#define TOLTIERS_COMMON_STOPWATCH_HH

#include <chrono>

namespace toltiers::common {

/** Monotonic wall-clock stopwatch with microsecond resolution. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    /** Milliseconds elapsed since construction or the last reset(). */
    double milliseconds() const { return seconds() * 1e3; }

    /** Microseconds elapsed since construction or the last reset(). */
    double microseconds() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace toltiers::common

#endif // TOLTIERS_COMMON_STOPWATCH_HH
