/**
 * @file
 * Fixed-size work-stealing thread pool.
 *
 * The pool is the shared execution core behind every parallel path
 * in the library: the routing-rule generator bootstraps candidates
 * on it, cross-validation runs folds on it, the tolerance sweeps
 * score points on it, and the tier service's concurrent front door
 * serves requests on it. One pool instance therefore has to support
 * *nested* structured parallelism: a task running on a worker may
 * itself fan out a parallelFor and wait for it.
 *
 * Scheduling model: every worker owns a deque. The owner pushes and
 * pops at the back (LIFO, cache-warm); thieves steal from the front
 * (FIFO, oldest first). External threads inject into a shared queue
 * the workers also drain. A TaskGroup::wait() never parks a worker
 * while work is runnable — the waiter *helps*, executing pending
 * tasks (its own, stolen, or injected) until its group drains. That
 * helping rule is the nested-submission deadlock guard: even a pool
 * with one worker can run arbitrarily deep nests, because the
 * waiter is itself an executor.
 *
 * Determinism contract: the pool makes **no ordering promises** —
 * callers that need bit-identical results across thread counts must
 * key all randomness by task index (see exec/rng.hh) and write
 * results into index-addressed slots (see exec::parallelMap).
 */

#ifndef TOLTIERS_EXEC_POOL_HH
#define TOLTIERS_EXEC_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace toltiers::exec {

using Task = std::function<void()>;

/** Fixed-size work-stealing pool; see the file comment. */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers. 0 and 1 both mean "no worker
     * threads": submitted tasks are queued and executed by whoever
     * waits on them (TaskGroup::wait drains the queue inline), so a
     * single-threaded pool is exactly the serial execution order.
     */
    explicit ThreadPool(std::size_t threads);

    /** Stops and joins. Pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads owned by the pool (0 for an inline pool). */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Enqueue one detached task. From a worker thread of this pool
     * the task lands on the worker's own deque; from any other
     * thread it lands on the shared injection queue.
     */
    void submit(Task task);

    /**
     * Run one pending task on the calling thread if any is
     * immediately available (own deque, injection queue, or stolen).
     * Returns false when nothing was runnable. This is the helping
     * primitive TaskGroup::wait is built on; it is also public so
     * latency-sensitive callers can donate cycles to the pool.
     */
    bool runOneTask();

    /** The pool the calling thread is a worker of, or nullptr. */
    static ThreadPool *current();

    /** Tasks currently queued (approximate; for tests/telemetry). */
    std::size_t pendingTasks() const;

  private:
    struct WorkerQueue
    {
        mutable std::mutex mu;
        std::deque<Task> q;
    };

    void workerMain(std::size_t index);
    bool popOwn(std::size_t index, Task &out);
    bool popInjected(Task &out);
    bool steal(std::size_t thief, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    mutable std::mutex injectMu_;
    std::deque<Task> injected_;

    std::mutex sleepMu_;
    std::condition_variable sleepCv_;
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> pending_{0};
};

/**
 * Structured completion tracking for a batch of tasks: run() tasks,
 * then wait() for all of them. wait() *helps* (executes pool tasks)
 * instead of parking while work is runnable, so it is safe to call
 * from inside another pool task. The first exception thrown by any
 * task is captured and rethrown from wait(); later ones are
 * swallowed (the batch still runs to completion).
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}
    ~TaskGroup() { waitNoThrow(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit one task belonging to this group. */
    void run(Task task);

    /**
     * Block until every task run() so far has finished, helping the
     * pool while any task is runnable. Rethrows the batch's first
     * exception.
     */
    void wait();

    /** Tasks not yet finished. */
    std::size_t pendingCount() const
    {
        return pending_.load(std::memory_order_acquire);
    }

  private:
    void waitNoThrow();

    ThreadPool &pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex mu_;
    std::condition_variable cv_;
    std::exception_ptr error_; //!< Guarded by mu_.
};

} // namespace toltiers::exec

#endif // TOLTIERS_EXEC_POOL_HH
