#include "exec/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace toltiers::exec {

std::size_t
configuredThreadCount()
{
    if (const char *env = std::getenv("TT_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(std::min(v, 256L));
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(configuredThreadCount());
    return *g_pool;
}

void
setGlobalThreadCount(std::size_t threads)
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_pool.reset(); // Joins the old workers after draining.
    g_pool = std::make_unique<ThreadPool>(threads);
}

void
parallelFor(ThreadPool &pool, std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &body,
            std::size_t grain)
{
    if (begin >= end)
        return;
    if (grain == 0)
        grain = 1;
    std::size_t n = end - begin;
    std::size_t chunks = (n + grain - 1) / grain;
    if (pool.threadCount() <= 1 || chunks <= 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    struct Shared
    {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> abort{false};
    };
    Shared shared;
    shared.next.store(begin, std::memory_order_relaxed);

    auto runChunks = [&] {
        for (;;) {
            if (shared.abort.load(std::memory_order_acquire))
                return;
            std::size_t lo = shared.next.fetch_add(
                grain, std::memory_order_relaxed);
            if (lo >= end)
                return;
            std::size_t hi = std::min(end, lo + grain);
            for (std::size_t i = lo; i < hi; ++i)
                body(i);
        }
    };

    // One runner per worker beyond the caller; the caller claims
    // chunks too, so a pool whose workers are all busy with
    // unrelated tasks still makes progress on this loop.
    std::size_t runners =
        std::min(pool.threadCount(), chunks - 1);
    TaskGroup group(pool);
    for (std::size_t r = 0; r < runners; ++r) {
        group.run([&] {
            try {
                runChunks();
            } catch (...) {
                shared.abort.store(true, std::memory_order_release);
                throw; // TaskGroup captures the first exception.
            }
        });
    }
    try {
        runChunks();
    } catch (...) {
        shared.abort.store(true, std::memory_order_release);
        group.wait(); // Runners drain fast once aborted.
        throw;        // The caller's own exception wins.
    }
    group.wait();
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &body,
            std::size_t grain)
{
    parallelFor(globalPool(), begin, end, body, grain);
}

} // namespace toltiers::exec
