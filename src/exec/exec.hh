/**
 * @file
 * Umbrella header for the execution subsystem: the work-stealing
 * thread pool, structured parallel loops, and per-task RNG streams.
 *
 * See README "Parallelism & determinism" and DESIGN.md for the
 * subsystem's contracts.
 */

#ifndef TOLTIERS_EXEC_EXEC_HH
#define TOLTIERS_EXEC_EXEC_HH

#include "exec/parallel.hh"
#include "exec/pool.hh"
#include "exec/rng.hh"

#endif // TOLTIERS_EXEC_EXEC_HH
