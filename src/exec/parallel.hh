/**
 * @file
 * Structured parallel loops over the work-stealing pool, and the
 * process-wide pool configuration (TT_THREADS).
 *
 * Determinism contract: parallelFor/parallelMap partition an index
 * range; each index is processed exactly once and parallelMap
 * writes result i into slot i, so the returned vector is in index
 * order — an *ordered reduction* — no matter how the chunks were
 * scheduled. Combined with per-index RNG streams (exec/rng.hh) this
 * makes every parallel path produce bit-identical output for any
 * thread count, including 1.
 */

#ifndef TOLTIERS_EXEC_PARALLEL_HH
#define TOLTIERS_EXEC_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "exec/pool.hh"

namespace toltiers::exec {

/**
 * Threads the global pool runs: the TT_THREADS environment variable
 * when set (clamped to [1, 256]), otherwise hardware concurrency,
 * never less than 1.
 */
std::size_t configuredThreadCount();

/**
 * The process-wide pool every parallel path uses by default.
 * Created lazily at configuredThreadCount().
 */
ThreadPool &globalPool();

/**
 * Replace the global pool with one of `threads` threads (tests and
 * benchmarks sweep thread counts in one process this way). Blocks
 * until the old pool drains. Not safe concurrently with running
 * parallel work on the old pool.
 */
void setGlobalThreadCount(std::size_t threads);

/**
 * Run body(i) for every i in [begin, end) on the pool, the calling
 * thread included. Chunks of `grain` consecutive indices are
 * claimed from a shared atomic cursor. Falls back to a plain serial
 * loop when the range is small or the pool has no workers. The
 * first exception thrown by any iteration is rethrown on the
 * caller; remaining chunks are abandoned (each claimed chunk still
 * finishes its current iteration).
 */
void parallelFor(ThreadPool &pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &body,
                 std::size_t grain = 1);

/** parallelFor on the global pool. */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &body,
                 std::size_t grain = 1);

/**
 * Ordered parallel map: out[i] = fn(i) for i in [0, n). Results are
 * always in index order (see the file comment). T must be default
 * constructible and movable.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(ThreadPool &pool, std::size_t n, Fn &&fn,
            std::size_t grain = 1)
{
    std::vector<T> out(n);
    parallelFor(
        pool, 0, n, [&](std::size_t i) { out[i] = fn(i); }, grain);
    return out;
}

/** parallelMap on the global pool. */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t n, Fn &&fn, std::size_t grain = 1)
{
    return parallelMap<T>(globalPool(), n, std::forward<Fn>(fn),
                          grain);
}

} // namespace toltiers::exec

#endif // TOLTIERS_EXEC_PARALLEL_HH
