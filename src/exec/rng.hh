/**
 * @file
 * Per-task deterministic RNG streams.
 *
 * Parallel loops must not share one sequential RNG: the draw order
 * would then depend on scheduling and the results on the thread
 * count. Instead every task index derives its own decorrelated
 * Pcg32 stream from (seed, index) through splitmix64 — a bijective
 * finalizer whose consecutive outputs pass statistical testing —
 * so task i's randomness is a pure function of the seed and i,
 * bit-identical whether the loop runs on 1 thread or 64.
 */

#ifndef TOLTIERS_EXEC_RNG_HH
#define TOLTIERS_EXEC_RNG_HH

#include <cstdint>

#include "common/random.hh"

namespace toltiers::exec {

/** splitmix64 output function (Steele, Lea & Flood / Vigna). */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** The seed of task `task`'s stream under master seed `seed`. */
constexpr std::uint64_t
taskSeed(std::uint64_t seed, std::uint64_t task)
{
    return splitmix64(seed ^ splitmix64(task));
}

/**
 * The independent Pcg32 stream of task `task` under master seed
 * `seed`: both the PCG seed and its stream selector are derived, so
 * distinct tasks land on distinct, decorrelated sequences.
 */
inline common::Pcg32
taskRng(std::uint64_t seed, std::uint64_t task)
{
    std::uint64_t s = taskSeed(seed, task);
    return common::Pcg32(s, splitmix64(s));
}

} // namespace toltiers::exec

#endif // TOLTIERS_EXEC_RNG_HH
