#include "exec/pool.hh"

#include <chrono>

namespace toltiers::exec {

namespace {

/** Worker identity: which pool this thread belongs to, and which
 * of its deques it owns. Set for the lifetime of workerMain. */
thread_local ThreadPool *t_pool = nullptr;
thread_local std::size_t t_worker = 0;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads <= 1)
        return; // Inline pool: waiters drain the injection queue.
    queues_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(sleepMu_);
    }
    sleepCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    // An inline pool (no workers) may still hold queued tasks from
    // fire-and-forget submits nobody waited on; run them so their
    // side effects (completion flags, counters) are not lost.
    Task task;
    while (popInjected(task))
        task();
}

ThreadPool *
ThreadPool::current()
{
    return t_pool;
}

void
ThreadPool::submit(Task task)
{
    pending_.fetch_add(1, std::memory_order_release);
    if (t_pool == this && !queues_.empty()) {
        WorkerQueue &mine = *queues_[t_worker];
        std::lock_guard<std::mutex> lock(mine.mu);
        mine.q.push_back(std::move(task));
    } else {
        std::lock_guard<std::mutex> lock(injectMu_);
        injected_.push_back(std::move(task));
    }
    sleepCv_.notify_one();
}

bool
ThreadPool::popOwn(std::size_t index, Task &out)
{
    WorkerQueue &mine = *queues_[index];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (mine.q.empty())
        return false;
    out = std::move(mine.q.back());
    mine.q.pop_back();
    return true;
}

bool
ThreadPool::popInjected(Task &out)
{
    std::lock_guard<std::mutex> lock(injectMu_);
    if (injected_.empty())
        return false;
    out = std::move(injected_.front());
    injected_.pop_front();
    return true;
}

bool
ThreadPool::steal(std::size_t thief, Task &out)
{
    std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        WorkerQueue &victim = *queues_[(thief + k) % n];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (victim.q.empty())
            continue;
        out = std::move(victim.q.front());
        victim.q.pop_front();
        return true;
    }
    return false;
}

bool
ThreadPool::runOneTask()
{
    Task task;
    bool got = false;
    if (t_pool == this && !queues_.empty()) {
        got = popOwn(t_worker, task) || popInjected(task) ||
              steal(t_worker, task);
    } else {
        // External thread (or inline pool): injection queue first,
        // then steal from worker 0's perspective.
        got = popInjected(task);
        if (!got && !queues_.empty())
            got = steal(0, task) || popOwn(0, task);
    }
    if (!got)
        return false;
    task();
    pending_.fetch_sub(1, std::memory_order_release);
    return true;
}

std::size_t
ThreadPool::pendingTasks() const
{
    return pending_.load(std::memory_order_acquire);
}

void
ThreadPool::workerMain(std::size_t index)
{
    t_pool = this;
    t_worker = index;
    for (;;) {
        if (runOneTask())
            continue;
        std::unique_lock<std::mutex> lock(sleepMu_);
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0) {
            break;
        }
        // Re-check for work after a bounded nap: a task pushed to
        // another worker's deque between our scan and this wait
        // does not signal sleepCv_, so never park unbounded.
        sleepCv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    t_pool = nullptr;
}

void
TaskGroup::run(Task task)
{
    pending_.fetch_add(1, std::memory_order_release);
    pool_.submit([this, task = std::move(task)] {
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mu_);
        pending_.fetch_sub(1, std::memory_order_release);
        cv_.notify_all();
    });
}

void
TaskGroup::wait()
{
    // Help first: drain runnable work (ours or anybody's) so a
    // worker waiting on a nested group makes progress instead of
    // deadlocking the pool.
    while (pending_.load(std::memory_order_acquire) > 0) {
        if (pool_.runOneTask())
            continue;
        std::unique_lock<std::mutex> lock(mu_);
        if (pending_.load(std::memory_order_acquire) == 0)
            break;
        // Bounded nap, not a pure park: our remaining tasks may be
        // *running* on other workers (nothing left to help with),
        // or new helpable work may appear without a signal to us.
        cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(mu_);
        err = error_;
        error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
TaskGroup::waitNoThrow()
{
    try {
        wait();
    } catch (...) {
        // Destructor context: the batch's exception was already
        // either observed via wait() or is intentionally dropped.
    }
}

} // namespace toltiers::exec
