/**
 * @file
 * Dense row-major float tensor.
 *
 * The image-classification substrate trains and runs its CNNs on this
 * type. It is deliberately simple: contiguous storage, explicit shape,
 * no views or broadcasting — the operations in tensor/ops.hh do all
 * the heavy lifting.
 */

#ifndef TOLTIERS_TENSOR_TENSOR_HH
#define TOLTIERS_TENSOR_TENSOR_HH

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/random.hh"

namespace toltiers::tensor {

/** Dense row-major float tensor with an explicit shape. */
class Tensor
{
  public:
    /** Empty (rank-0, size-0) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<std::size_t> shape);

    /** Convenience: Tensor({2, 3}). */
    Tensor(std::initializer_list<std::size_t> shape);

    /** Shape accessors. */
    const std::vector<std::size_t> &shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t dim(std::size_t i) const;
    std::size_t size() const { return data_.size(); }

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 2-D element access; tensor must be rank 2. */
    float &at2(std::size_t i, std::size_t j);
    float at2(std::size_t i, std::size_t j) const;

    /** 4-D element access; tensor must be rank 4 (NCHW). */
    float &at4(std::size_t n, std::size_t c, std::size_t h,
               std::size_t w);
    float at4(std::size_t n, std::size_t c, std::size_t h,
              std::size_t w) const;

    /** Set every element to v. */
    void fill(float v);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /**
     * Reinterpret the shape; the element count must be preserved.
     */
    void reshape(std::vector<std::size_t> shape);

    /** Gaussian init with the given stdev. */
    void randomNormal(common::Pcg32 &rng, float stdev);

    /**
     * Kaiming/He initialization for a layer with the given fan-in
     * (stdev = sqrt(2 / fan_in)), appropriate before ReLU.
     */
    void randomKaiming(common::Pcg32 &rng, std::size_t fan_in);

    /** Uniform init in [lo, hi). */
    void randomUniform(common::Pcg32 &rng, float lo, float hi);

    /** Element-wise in-place operations. */
    Tensor &operator+=(const Tensor &other);
    Tensor &operator-=(const Tensor &other);
    Tensor &operator*=(float s);

    /** Sum of all elements. */
    double sum() const;

    /** Index of the largest element (first on ties). */
    std::size_t argmax() const;

    /** Human-readable "f32[2, 3]" shape string. */
    std::string shapeString() const;

    /** True if shapes match exactly. */
    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

  private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

} // namespace toltiers::tensor

#endif // TOLTIERS_TENSOR_TENSOR_HH
