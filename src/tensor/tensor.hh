/**
 * @file
 * Dense row-major float tensor.
 *
 * The image-classification substrate trains and runs its CNNs on this
 * type. It is deliberately simple: contiguous storage, explicit shape,
 * no views or broadcasting — the operations in tensor/ops.hh do all
 * the heavy lifting.
 *
 * Storage is arena-aware: inside an ArenaScope (see tensor/arena.hh)
 * element storage is bump-allocated from the scope's arena instead of
 * the heap, which makes the steady-state inference path allocation
 * free. The shape itself lives inline (rank is bounded), so
 * constructing a tensor inside a scope touches the heap zero times.
 */

#ifndef TOLTIERS_TENSOR_TENSOR_HH
#define TOLTIERS_TENSOR_TENSOR_HH

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"

namespace toltiers::tensor {

/**
 * A tensor shape with inline storage: a bounded-rank sequence of
 * positive extents. Behaves like a tiny vector (indexing, iteration,
 * equality) but never allocates, so shape bookkeeping stays off the
 * heap on the inference hot path.
 */
class Shape
{
  public:
    /** Ranks above this are rejected; the codebase uses <= 4. */
    static constexpr std::size_t kMaxRank = 6;

    /** Rank-0 (scalar-free, size-0) shape. */
    Shape() = default;

    /** From an explicit dimension list: Shape({2, 3}). */
    Shape(std::initializer_list<std::size_t> dims);

    /** From a dimension vector (implicit, for call-site ergonomics). */
    Shape(const std::vector<std::size_t> &dims); // NOLINT(google-explicit-constructor)

    /** Number of dimensions. */
    std::size_t size() const { return rank_; }
    bool empty() const { return rank_ == 0; }

    /** Dimension access (unchecked, like a vector). */
    std::size_t &operator[](std::size_t i) { return dims_[i]; }
    std::size_t operator[](std::size_t i) const { return dims_[i]; }

    /** Iteration over the extents. */
    const std::size_t *begin() const { return dims_; }
    const std::size_t *end() const { return dims_ + rank_; }

    /** Total element count (0 for a rank-0 shape). */
    std::size_t elementCount() const;

    /** This shape with an extra leading dimension. */
    Shape prepended(std::size_t dim) const;

    /** The extents as a vector (for external consumers). */
    std::vector<std::size_t> toVector() const;

    bool operator==(const Shape &other) const;
    bool operator!=(const Shape &other) const
    {
        return !(*this == other);
    }

  private:
    std::size_t dims_[kMaxRank] = {};
    std::size_t rank_ = 0;
};

namespace detail {

/**
 * Element storage for Tensor: a contiguous float block drawn from
 * the active ArenaScope's arena when one is live on this thread, or
 * from the heap otherwise. Arena-backed storage is released en masse
 * by Arena::reset(); the destructor only frees heap-backed blocks.
 */
class FloatStorage
{
  public:
    FloatStorage() = default;

    /** Zero-initialized block of n floats. */
    explicit FloatStorage(std::size_t n);

    FloatStorage(const FloatStorage &other);
    FloatStorage &operator=(const FloatStorage &other);
    FloatStorage(FloatStorage &&other) noexcept;
    FloatStorage &operator=(FloatStorage &&other) noexcept;
    ~FloatStorage() = default;

    float *data() { return ptr_; }
    const float *data() const { return ptr_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    float &operator[](std::size_t i) { return ptr_[i]; }
    float operator[](std::size_t i) const { return ptr_[i]; }

    float *begin() { return ptr_; }
    float *end() { return ptr_ + size_; }
    const float *begin() const { return ptr_; }
    const float *end() const { return ptr_ + size_; }

  private:
    float *ptr_ = nullptr;
    std::size_t size_ = 0;
    std::unique_ptr<float[]> heap_; //!< Null when arena-backed.
};

} // namespace detail

/** Dense row-major float tensor with an explicit shape. */
class Tensor
{
  public:
    /** Empty (rank-0, size-0) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Convenience: Tensor({2, 3}). */
    Tensor(std::initializer_list<std::size_t> shape);

    /** Shape accessors. */
    const Shape &shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t dim(std::size_t i) const;
    std::size_t size() const { return data_.size(); }

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 2-D element access; tensor must be rank 2. */
    float &at2(std::size_t i, std::size_t j);
    float at2(std::size_t i, std::size_t j) const;

    /** 4-D element access; tensor must be rank 4 (NCHW). */
    float &at4(std::size_t n, std::size_t c, std::size_t h,
               std::size_t w);
    float at4(std::size_t n, std::size_t c, std::size_t h,
              std::size_t w) const;

    /** Set every element to v. */
    void fill(float v);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /**
     * Reinterpret the shape; the element count must be preserved.
     */
    void reshape(Shape shape);

    /** Gaussian init with the given stdev. */
    void randomNormal(common::Pcg32 &rng, float stdev);

    /**
     * Kaiming/He initialization for a layer with the given fan-in
     * (stdev = sqrt(2 / fan_in)), appropriate before ReLU.
     */
    void randomKaiming(common::Pcg32 &rng, std::size_t fan_in);

    /** Uniform init in [lo, hi). */
    void randomUniform(common::Pcg32 &rng, float lo, float hi);

    /** Element-wise in-place operations. */
    Tensor &operator+=(const Tensor &other);
    Tensor &operator-=(const Tensor &other);
    Tensor &operator*=(float s);

    /** Sum of all elements. */
    double sum() const;

    /** Index of the largest element (first on ties). */
    std::size_t argmax() const;

    /** Human-readable "f32[2, 3]" shape string. */
    std::string shapeString() const;

    /** True if shapes match exactly. */
    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

  private:
    Shape shape_;
    detail::FloatStorage data_;
};

} // namespace toltiers::tensor

#endif // TOLTIERS_TENSOR_TENSOR_HH
