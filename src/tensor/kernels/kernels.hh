/**
 * @file
 * Inference GEMM kernels behind a runtime-selectable policy.
 *
 * Two float backends implement the same contract:
 *
 *  - Reference: the original scalar ikj loop, kept verbatim as the
 *    correctness oracle.
 *  - Blocked: cache-blocked (4-row × 64-column tiles) with portable
 *    `#pragma omp simd` vectorization hints.
 *
 * The Blocked backend is **bit-exact** against Reference: every
 * output element is accumulated in ascending-k order with the same
 * skip-zero test, so tiling changes memory traffic but not a single
 * rounding step (tests/kernels_test.cc proves this property on
 * random streams and edge shapes).
 *
 * All GEMMs use the accumulate contract C += A·B; callers pass a
 * zero-initialized C (Tensor construction already guarantees this).
 * The int8 kernel accumulates in explicit int32 — never in the
 * element type — so K ≥ 129 dot products of saturated values cannot
 * wrap (regression-tested).
 *
 * Backend selection: `TT_KERNEL_BACKEND=reference|blocked` in the
 * environment, or setKernelBackend() (the `--kernel-backend` CLI
 * flag). Default is Blocked.
 */

#ifndef TOLTIERS_TENSOR_KERNELS_KERNELS_HH
#define TOLTIERS_TENSOR_KERNELS_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace toltiers::tensor {

/** Which GEMM implementation the hot path dispatches to. */
enum class KernelBackend
{
    Reference, //!< Scalar oracle (original ikj loop).
    Blocked,   //!< Tiled + simd-hinted, bit-exact vs Reference.
};

/** The process-wide kernel selection. */
struct KernelPolicy
{
    KernelBackend backend = KernelBackend::Blocked;
};

/** Current policy (initialized once from TT_KERNEL_BACKEND). */
KernelPolicy kernelPolicy();

/** Override the process-wide backend (thread-safe). */
void setKernelBackend(KernelBackend backend);

/** Parse "reference"/"blocked"; nullopt on anything else. */
std::optional<KernelBackend> parseKernelBackend(
    const std::string &name);

/** Lowercase display name of a backend. */
const char *kernelBackendName(KernelBackend backend);

namespace kernels {

/**
 * C[m,n] += A[m,k] · B[k,n], scalar reference order: for each output
 * element, products are added in ascending k, skipping zero A
 * entries. This is the oracle every other float backend must match
 * bit-for-bit.
 */
void gemmF32Reference(const float *a, const float *b, float *c,
                      std::size_t m, std::size_t k, std::size_t n);

/**
 * C[m,n] += A[m,k] · B[k,n], cache-blocked. Per-element accumulation
 * order is identical to gemmF32Reference (ascending k, same zero
 * skip), so results are bit-identical; only the traversal of (i, j)
 * tiles differs.
 */
void gemmF32Blocked(const float *a, const float *b, float *c,
                    std::size_t m, std::size_t k, std::size_t n);

/** Dispatch to the backend chosen by kernelPolicy(). */
void gemmF32(const float *a, const float *b, float *c, std::size_t m,
             std::size_t k, std::size_t n);

/**
 * C[m,n] += A[m,k] · B[k,n] over int8 operands with explicit int32
 * accumulation (exact for any K up to ~131k even at saturated ±127
 * inputs).
 */
void gemmS8(const std::int8_t *a, const std::int8_t *b,
            std::int32_t *c, std::size_t m, std::size_t k,
            std::size_t n);

} // namespace kernels

} // namespace toltiers::tensor

#endif // TOLTIERS_TENSOR_KERNELS_KERNELS_HH
