#include "tensor/kernels/quantize.hh"

#include <algorithm>
#include <cmath>

namespace toltiers::tensor {

QuantParams
chooseQuantParams(float lo, float hi)
{
    // Widen to include zero: zero must be exactly representable so
    // conv padding and ReLU floors survive the round trip.
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);
    QuantParams p;
    if (hi == lo)
        return p; // all-zero range: identity mapping
    p.scale = (hi - lo) / (2.0f * static_cast<float>(kQuantMax));
    float zp = -static_cast<float>(kQuantMax) - lo / p.scale;
    p.zeroPoint = static_cast<std::int32_t>(std::lround(zp));
    p.zeroPoint = std::clamp(p.zeroPoint, -kQuantMax, kQuantMax);
    return p;
}

std::int8_t
quantizeValue(float x, const QuantParams &p)
{
    long q = std::lround(x / p.scale) + p.zeroPoint;
    q = std::clamp(q, static_cast<long>(-kQuantMax),
                   static_cast<long>(kQuantMax));
    return static_cast<std::int8_t>(q);
}

void
quantizeBuffer(const float *x, std::size_t n, const QuantParams &p,
               std::int8_t *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = quantizeValue(x[i], p);
}

std::vector<float>
quantizeWeightsPerChannel(const float *w, std::size_t channels,
                          std::size_t per_channel, std::int8_t *out)
{
    std::vector<float> scales(channels, 1.0f);
    for (std::size_t c = 0; c < channels; ++c) {
        const float *row = w + c * per_channel;
        float amax = 0.0f;
        for (std::size_t i = 0; i < per_channel; ++i)
            amax = std::max(amax, std::fabs(row[i]));
        QuantParams p;
        if (amax > 0.0f)
            p.scale = amax / static_cast<float>(kQuantMax);
        scales[c] = p.scale;
        quantizeBuffer(row, per_channel, p,
                       out + c * per_channel);
    }
    return scales;
}

void
bufferRange(const float *x, std::size_t n, float &lo, float &hi)
{
    lo = 0.0f;
    hi = 0.0f;
    if (n == 0)
        return;
    lo = x[0];
    hi = x[0];
    for (std::size_t i = 1; i < n; ++i) {
        lo = std::min(lo, x[i]);
        hi = std::max(hi, x[i]);
    }
}

} // namespace toltiers::tensor
