/**
 * @file
 * int8 post-training-quantization primitives.
 *
 * Scheme (standard symmetric-weight / affine-activation PTQ):
 *
 *  - Activations: per-tensor affine, q = clamp(round(x / scale) +
 *    zeroPoint, ±127). Parameters are chosen **statically** from a
 *    calibration batch, never per-request — a dynamic scheme would
 *    make a request's result depend on its batch companions, which
 *    would break the serving layer's determinism and cache-identity
 *    contracts.
 *  - Weights: per-output-channel symmetric, q = clamp(round(w /
 *    scale_c), ±127) with zeroPoint fixed at 0.
 *
 * Both sides saturate at ±127 (the symmetric int8 range; -128 is
 * unused so negation can never overflow).
 *
 * Dequantization of an int32 GEMM accumulator:
 *   y[f] = (acc[f] - za * colsum_f(Wq)) * (sa * sw_f) + bias[f]
 * where (sa, za) are the activation parameters and sw_f the channel
 * weight scale; the colsum term folds the activation zero point out
 * of the integer product.
 */

#ifndef TOLTIERS_TENSOR_KERNELS_QUANTIZE_HH
#define TOLTIERS_TENSOR_KERNELS_QUANTIZE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace toltiers::tensor {

/** Affine int8 mapping: real = (q - zeroPoint) * scale. */
struct QuantParams
{
    float scale = 1.0f;
    std::int32_t zeroPoint = 0;
};

/** Saturation bound: quantized values live in [-127, 127]. */
inline constexpr std::int32_t kQuantMax = 127;

/**
 * Activation parameters covering [lo, hi] (the range is widened to
 * include zero so padding quantizes exactly). A degenerate range
 * yields scale 1, zero point 0.
 */
QuantParams chooseQuantParams(float lo, float hi);

/** Quantize one value under p, saturating at ±127. */
std::int8_t quantizeValue(float x, const QuantParams &p);

/** Dequantize one value under p. */
inline float
dequantizeValue(std::int8_t q, const QuantParams &p)
{
    return static_cast<float>(static_cast<std::int32_t>(q) -
                              p.zeroPoint) *
           p.scale;
}

/** Quantize a buffer of n floats into out (caller-sized). */
void quantizeBuffer(const float *x, std::size_t n,
                    const QuantParams &p, std::int8_t *out);

/**
 * Per-output-channel symmetric weight quantization of w viewed as
 * [channels, per_channel] (row-major). Returns the per-channel
 * scales; quantized weights land in out (size channels *
 * per_channel). A zero channel gets scale 1.
 */
std::vector<float> quantizeWeightsPerChannel(const float *w,
                                             std::size_t channels,
                                             std::size_t per_channel,
                                             std::int8_t *out);

/** Min/max of a buffer (0,0 for an empty buffer). */
void bufferRange(const float *x, std::size_t n, float &lo, float &hi);

} // namespace toltiers::tensor

#endif // TOLTIERS_TENSOR_KERNELS_QUANTIZE_HH
