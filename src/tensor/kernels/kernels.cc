#include "tensor/kernels/kernels.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace toltiers::tensor {

namespace {

KernelBackend
backendFromEnv()
{
    const char *env = std::getenv("TT_KERNEL_BACKEND");
    if (env != nullptr) {
        auto parsed = parseKernelBackend(env);
        if (parsed)
            return *parsed;
    }
    return KernelBackend::Blocked;
}

std::atomic<KernelBackend> &
backendState()
{
    static std::atomic<KernelBackend> state{backendFromEnv()};
    return state;
}

} // namespace

KernelPolicy
kernelPolicy()
{
    return KernelPolicy{
        backendState().load(std::memory_order_relaxed)};
}

void
setKernelBackend(KernelBackend backend)
{
    backendState().store(backend, std::memory_order_relaxed);
}

std::optional<KernelBackend>
parseKernelBackend(const std::string &name)
{
    if (name == "reference")
        return KernelBackend::Reference;
    if (name == "blocked")
        return KernelBackend::Blocked;
    return std::nullopt;
}

const char *
kernelBackendName(KernelBackend backend)
{
    switch (backend) {
    case KernelBackend::Reference:
        return "reference";
    case KernelBackend::Blocked:
        return "blocked";
    }
    return "unknown";
}

namespace kernels {

void
gemmF32Reference(const float *a, const float *b, float *c,
                 std::size_t m, std::size_t k, std::size_t n)
{
    // ikj loop order: streams B and C rows for cache friendliness.
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            float av = a[i * k + kk];
            if (av == 0.0f)
                continue;
            const float *brow = b + kk * n;
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmF32Blocked(const float *a, const float *b, float *c,
               std::size_t m, std::size_t k, std::size_t n)
{
    // Register/cache blocking: MR rows of A share each B row load and
    // an NB-column C tile stays hot in L1 across the whole k sweep.
    // Each element still accumulates products in ascending k with the
    // same zero skip as the reference, so the result is bit-exact.
    constexpr std::size_t MR = 4;
    constexpr std::size_t NB = 64;
    for (std::size_t j0 = 0; j0 < n; j0 += NB) {
        std::size_t jend = std::min(j0 + NB, n);
        for (std::size_t i0 = 0; i0 < m; i0 += MR) {
            std::size_t iend = std::min(i0 + MR, m);
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float *brow = b + kk * n;
                for (std::size_t i = i0; i < iend; ++i) {
                    float av = a[i * k + kk];
                    if (av == 0.0f)
                        continue;
                    float *crow = c + i * n;
#pragma omp simd
                    for (std::size_t j = j0; j < jend; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
gemmF32(const float *a, const float *b, float *c, std::size_t m,
        std::size_t k, std::size_t n)
{
    switch (kernelPolicy().backend) {
    case KernelBackend::Reference:
        gemmF32Reference(a, b, c, m, k, n);
        return;
    case KernelBackend::Blocked:
        gemmF32Blocked(a, b, c, m, k, n);
        return;
    }
}

void
gemmS8(const std::int8_t *a, const std::int8_t *b, std::int32_t *c,
       std::size_t m, std::size_t k, std::size_t n)
{
    // Integer accumulation is associative, so only the int32 width
    // matters for exactness: |product| <= 127*127, so overflow needs
    // K > 2^31 / 127^2 ≈ 133k — far beyond any layer here.
    constexpr std::size_t MR = 4;
    constexpr std::size_t NB = 64;
    for (std::size_t j0 = 0; j0 < n; j0 += NB) {
        std::size_t jend = std::min(j0 + NB, n);
        for (std::size_t i0 = 0; i0 < m; i0 += MR) {
            std::size_t iend = std::min(i0 + MR, m);
            for (std::size_t kk = 0; kk < k; ++kk) {
                const std::int8_t *brow = b + kk * n;
                for (std::size_t i = i0; i < iend; ++i) {
                    std::int32_t av = a[i * k + kk];
                    if (av == 0)
                        continue;
                    std::int32_t *crow = c + i * n;
#pragma omp simd
                    for (std::size_t j = j0; j < jend; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

} // namespace kernels

} // namespace toltiers::tensor
