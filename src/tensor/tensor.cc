#include "tensor/tensor.hh"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "tensor/arena.hh"

namespace toltiers::tensor {

using common::panic;

Shape::Shape(std::initializer_list<std::size_t> dims)
{
    TT_ASSERT(dims.size() <= kMaxRank, "shape rank ", dims.size(),
              " exceeds kMaxRank");
    for (std::size_t d : dims)
        dims_[rank_++] = d;
}

Shape::Shape(const std::vector<std::size_t> &dims)
{
    TT_ASSERT(dims.size() <= kMaxRank, "shape rank ", dims.size(),
              " exceeds kMaxRank");
    for (std::size_t d : dims)
        dims_[rank_++] = d;
}

std::size_t
Shape::elementCount() const
{
    if (rank_ == 0)
        return 0;
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) {
        TT_ASSERT(dims_[i] > 0, "tensor dimensions must be positive");
        n *= dims_[i];
    }
    return n;
}

Shape
Shape::prepended(std::size_t dim) const
{
    TT_ASSERT(rank_ < kMaxRank, "prepended() exceeds kMaxRank");
    Shape out;
    out.rank_ = rank_ + 1;
    out.dims_[0] = dim;
    for (std::size_t i = 0; i < rank_; ++i)
        out.dims_[i + 1] = dims_[i];
    return out;
}

std::vector<std::size_t>
Shape::toVector() const
{
    return std::vector<std::size_t>(begin(), end());
}

bool
Shape::operator==(const Shape &other) const
{
    if (rank_ != other.rank_)
        return false;
    for (std::size_t i = 0; i < rank_; ++i) {
        if (dims_[i] != other.dims_[i])
            return false;
    }
    return true;
}

namespace detail {

FloatStorage::FloatStorage(std::size_t n) : size_(n)
{
    if (n == 0)
        return;
    if (Arena *arena = ArenaScope::current()) {
        ptr_ = static_cast<float *>(
            arena->allocate(n * sizeof(float)));
        std::memset(ptr_, 0, n * sizeof(float));
        noteTensorArenaAllocation();
    } else {
        heap_ = std::make_unique<float[]>(n); // value-init zeroes
        ptr_ = heap_.get();
        noteTensorHeapAllocation();
    }
}

FloatStorage::FloatStorage(const FloatStorage &other)
    : size_(other.size_)
{
    if (size_ == 0)
        return;
    if (Arena *arena = ArenaScope::current()) {
        ptr_ = static_cast<float *>(
            arena->allocate(size_ * sizeof(float)));
        noteTensorArenaAllocation();
    } else {
        heap_ = std::make_unique_for_overwrite<float[]>(size_);
        ptr_ = heap_.get();
        noteTensorHeapAllocation();
    }
    std::memcpy(ptr_, other.ptr_, size_ * sizeof(float));
}

FloatStorage &
FloatStorage::operator=(const FloatStorage &other)
{
    if (this == &other)
        return *this;
    *this = FloatStorage(other);
    return *this;
}

FloatStorage::FloatStorage(FloatStorage &&other) noexcept
    : ptr_(std::exchange(other.ptr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      heap_(std::move(other.heap_))
{
}

FloatStorage &
FloatStorage::operator=(FloatStorage &&other) noexcept
{
    if (this == &other)
        return *this;
    ptr_ = std::exchange(other.ptr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    heap_ = std::move(other.heap_);
    return *this;
}

} // namespace detail

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(shape.elementCount())
{
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(Shape(shape))
{
}

std::size_t
Tensor::dim(std::size_t i) const
{
    TT_ASSERT(i < shape_.size(), "dim index out of range");
    return shape_[i];
}

float &
Tensor::at2(std::size_t i, std::size_t j)
{
    TT_ASSERT(rank() == 2, "at2 on a rank-", rank(), " tensor");
    return data_[i * shape_[1] + j];
}

float
Tensor::at2(std::size_t i, std::size_t j) const
{
    TT_ASSERT(rank() == 2, "at2 on a rank-", rank(), " tensor");
    return data_[i * shape_[1] + j];
}

float &
Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
{
    TT_ASSERT(rank() == 4, "at4 on a rank-", rank(), " tensor");
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float
Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
            std::size_t w) const
{
    TT_ASSERT(rank() == 4, "at4 on a rank-", rank(), " tensor");
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void
Tensor::fill(float v)
{
    for (float &x : data_)
        x = v;
}

void
Tensor::reshape(Shape shape)
{
    if (shape.elementCount() != data_.size()) {
        panic("reshape changes element count: ", data_.size(), " -> ",
              shape.elementCount());
    }
    shape_ = shape;
}

void
Tensor::randomNormal(common::Pcg32 &rng, float stdev)
{
    for (float &x : data_)
        x = static_cast<float>(rng.gaussian(0.0, stdev));
}

void
Tensor::randomKaiming(common::Pcg32 &rng, std::size_t fan_in)
{
    TT_ASSERT(fan_in > 0, "fan_in must be positive");
    float stdev =
        std::sqrt(2.0f / static_cast<float>(fan_in));
    randomNormal(rng, stdev);
}

void
Tensor::randomUniform(common::Pcg32 &rng, float lo, float hi)
{
    for (float &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    TT_ASSERT(sameShape(other), "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &other)
{
    TT_ASSERT(sameShape(other), "shape mismatch in -=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    for (float &x : data_)
        x *= s;
    return *this;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float x : data_)
        s += x;
    return s;
}

std::size_t
Tensor::argmax() const
{
    TT_ASSERT(!data_.empty(), "argmax of an empty tensor");
    std::size_t best = 0;
    for (std::size_t i = 1; i < data_.size(); ++i) {
        if (data_[i] > data_[best])
            best = i;
    }
    return best;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "f32[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i > 0)
            oss << ", ";
        oss << shape_[i];
    }
    oss << ']';
    return oss.str();
}

} // namespace toltiers::tensor
