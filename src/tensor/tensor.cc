#include "tensor/tensor.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace toltiers::tensor {

using common::panic;

namespace {

std::size_t
shapeSize(const std::vector<std::size_t> &shape)
{
    std::size_t n = 1;
    for (std::size_t d : shape) {
        TT_ASSERT(d > 0, "tensor dimensions must be positive");
        n *= d;
    }
    return shape.empty() ? 0 : n;
}

} // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shapeSize(shape_), 0.0f)
{
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape))
{
}

std::size_t
Tensor::dim(std::size_t i) const
{
    TT_ASSERT(i < shape_.size(), "dim index out of range");
    return shape_[i];
}

float &
Tensor::at2(std::size_t i, std::size_t j)
{
    TT_ASSERT(rank() == 2, "at2 on a rank-", rank(), " tensor");
    return data_[i * shape_[1] + j];
}

float
Tensor::at2(std::size_t i, std::size_t j) const
{
    TT_ASSERT(rank() == 2, "at2 on a rank-", rank(), " tensor");
    return data_[i * shape_[1] + j];
}

float &
Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
{
    TT_ASSERT(rank() == 4, "at4 on a rank-", rank(), " tensor");
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float
Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
            std::size_t w) const
{
    TT_ASSERT(rank() == 4, "at4 on a rank-", rank(), " tensor");
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void
Tensor::fill(float v)
{
    for (float &x : data_)
        x = v;
}

void
Tensor::reshape(std::vector<std::size_t> shape)
{
    if (shapeSize(shape) != data_.size()) {
        panic("reshape changes element count: ", data_.size(), " -> ",
              shapeSize(shape));
    }
    shape_ = std::move(shape);
}

void
Tensor::randomNormal(common::Pcg32 &rng, float stdev)
{
    for (float &x : data_)
        x = static_cast<float>(rng.gaussian(0.0, stdev));
}

void
Tensor::randomKaiming(common::Pcg32 &rng, std::size_t fan_in)
{
    TT_ASSERT(fan_in > 0, "fan_in must be positive");
    float stdev =
        std::sqrt(2.0f / static_cast<float>(fan_in));
    randomNormal(rng, stdev);
}

void
Tensor::randomUniform(common::Pcg32 &rng, float lo, float hi)
{
    for (float &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    TT_ASSERT(sameShape(other), "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &other)
{
    TT_ASSERT(sameShape(other), "shape mismatch in -=");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    for (float &x : data_)
        x *= s;
    return *this;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float x : data_)
        s += x;
    return s;
}

std::size_t
Tensor::argmax() const
{
    TT_ASSERT(!data_.empty(), "argmax of an empty tensor");
    std::size_t best = 0;
    for (std::size_t i = 1; i < data_.size(); ++i) {
        if (data_[i] > data_[best])
            best = i;
    }
    return best;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "f32[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i > 0)
            oss << ", ";
        oss << shape_[i];
    }
    oss << ']';
    return oss.str();
}

} // namespace toltiers::tensor
