/**
 * @file
 * Neural-network math kernels over Tensor: matmul, im2col
 * convolution, pooling, activations, and the softmax/cross-entropy
 * head, each with the backward pass needed for SGD training.
 *
 * Every kernel also exposes a multiply-accumulate (MAC) count, which
 * the serving layer uses as the deterministic work-unit latency of a
 * model version (see DESIGN.md, substitution table).
 */

#ifndef TOLTIERS_TENSOR_OPS_HH
#define TOLTIERS_TENSOR_OPS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace toltiers::tensor {

/** C[m,n] = A[m,k] * B[k,n]. */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C[m,n] = A^T[m,k] * B[k,n] where A is stored as [k,m]. */
Tensor matmulTransA(const Tensor &a, const Tensor &b);

/** C[m,n] = A[m,k] * B^T[k,n] where B is stored as [n,k]. */
Tensor matmulTransB(const Tensor &a, const Tensor &b);

/** Add bias[n] to every row of x[m,n] in place. */
void addBiasRows(Tensor &x, const Tensor &bias);

/** out = max(x, 0), elementwise. */
Tensor reluForward(const Tensor &x);

/** dIn = dOut where x > 0 else 0. */
Tensor reluBackward(const Tensor &d_out, const Tensor &x);

/** Geometry of a convolution or pooling window sweep. */
struct ConvGeometry
{
    std::size_t kernel = 3;
    std::size_t stride = 1;
    std::size_t pad = 1;

    /** Output spatial extent for an input extent. */
    std::size_t outExtent(std::size_t in) const
    {
        return (in + 2 * pad - kernel) / stride + 1;
    }
};

/**
 * Lower one NCHW sample into a column matrix of shape
 * [C*KH*KW, OH*OW] for matmul-based convolution.
 */
Tensor im2col(const Tensor &in, std::size_t sample,
              const ConvGeometry &g);

/**
 * Scatter a column matrix gradient back into an NCHW sample gradient
 * (the adjoint of im2col). Accumulates into d_in.
 */
void col2im(const Tensor &cols, Tensor &d_in, std::size_t sample,
            const ConvGeometry &g);

/**
 * conv2d forward: in [N,C,H,W], w [F,C,KH,KW], bias [F] ->
 * out [N,F,OH,OW].
 */
Tensor conv2dForward(const Tensor &in, const Tensor &w,
                     const Tensor &bias, const ConvGeometry &g);

/** Gradients of conv2d; all outputs are allocated by the call. */
struct Conv2dGrads
{
    Tensor dIn;
    Tensor dW;
    Tensor dBias;
};

Conv2dGrads conv2dBackward(const Tensor &in, const Tensor &w,
                           const Tensor &d_out, const ConvGeometry &g);

/** Max-pool forward result: pooled values plus argmax flat indices. */
struct PoolResult
{
    Tensor out;
    std::vector<std::uint32_t> argmax; //!< Flat input index per output.
};

/** 2-D max pooling (no padding). */
PoolResult maxPool2dForward(const Tensor &in, std::size_t kernel,
                            std::size_t stride);

/**
 * Allocation-lean max pooling: writes argmax into a caller-owned
 * buffer (resized in place, so a warm buffer is reused) and returns
 * the pooled tensor.
 */
Tensor maxPool2dForward(const Tensor &in, std::size_t kernel,
                        std::size_t stride,
                        std::vector<std::uint32_t> &argmax);

/** Route gradients back through the recorded argmax indices. */
Tensor maxPool2dBackward(const Tensor &d_out,
                         const std::vector<std::uint32_t> &argmax,
                         const Shape &in_shape);

/** Global average pool: [N,C,H,W] -> [N,C]. */
Tensor globalAvgPoolForward(const Tensor &in);

/** Backward of global average pooling. */
Tensor globalAvgPoolBackward(const Tensor &d_out,
                             const Shape &in_shape);

/** Row-wise softmax of logits [m,n], numerically stabilized. */
Tensor softmaxRows(const Tensor &logits);

/**
 * Mean cross-entropy of row-softmax probabilities against integer
 * labels; probs [m,n], labels.size() == m.
 */
double crossEntropy(const Tensor &probs,
                    const std::vector<std::size_t> &labels);

/**
 * Gradient of mean cross-entropy w.r.t. logits given softmax
 * probabilities: (probs - onehot) / m.
 */
Tensor softmaxXentBackward(const Tensor &probs,
                           const std::vector<std::size_t> &labels);

/** MACs of a dense layer [m,k] x [k,n]. */
std::uint64_t denseMacs(std::size_t m, std::size_t k, std::size_t n);

/** MACs of a convolution for the given shapes. */
std::uint64_t convMacs(std::size_t n, std::size_t c, std::size_t h,
                       std::size_t w, std::size_t f,
                       const ConvGeometry &g);

} // namespace toltiers::tensor

#endif // TOLTIERS_TENSOR_OPS_HH
