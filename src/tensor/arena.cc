#include "tensor/arena.hh"

#include <atomic>

#include "common/logging.hh"

namespace toltiers::tensor {

namespace {

/** Storage target of the calling thread (set by ArenaScope). */
thread_local Arena *tl_scope_arena = nullptr;

std::atomic<std::uint64_t> g_heap_allocations{0};
std::atomic<std::uint64_t> g_arena_allocations{0};

constexpr std::size_t
alignUp(std::size_t n, std::size_t align)
{
    return (n + align - 1) & ~(align - 1);
}

} // namespace

Arena::Arena(std::size_t block_bytes)
    : blockBytes_(alignUp(block_bytes > 0 ? block_bytes : 1,
                          kAlignment))
{
}

Arena::Block &
Arena::grow(std::size_t min_bytes)
{
    // Reuse an already-fetched block when one fits; the steady state
    // after warmup always lands here without touching the heap.
    for (std::size_t b = active_; b < blocks_.size(); ++b) {
        if (blocks_[b].capacity - blocks_[b].used >= min_bytes) {
            if (b != active_)
                std::swap(blocks_[b], blocks_[active_]);
            return blocks_[active_];
        }
    }
    std::size_t cap = min_bytes > blockBytes_
                          ? alignUp(min_bytes, kAlignment)
                          : blockBytes_;
    Block block;
    // Over-allocate by the alignment so the base can be rounded up.
    block.data = std::make_unique<std::byte[]>(cap + kAlignment);
    block.capacity = cap;
    stats_.heapBlocks += 1;
    stats_.heapBytes += cap;
    blocks_.push_back(std::move(block));
    active_ = blocks_.size() - 1;
    return blocks_.back();
}

void *
Arena::allocate(std::size_t bytes)
{
    std::size_t need = alignUp(bytes > 0 ? bytes : 1, kAlignment);
    Block *block = nullptr;
    if (!blocks_.empty() &&
        blocks_[active_].capacity - blocks_[active_].used >= need) {
        block = &blocks_[active_];
    } else {
        block = &grow(need);
    }
    auto base = reinterpret_cast<std::uintptr_t>(block->data.get());
    std::uintptr_t ptr =
        alignUp(base, kAlignment) + block->used;
    block->used += need;
    inUse_ += need;
    stats_.allocations += 1;
    if (inUse_ > stats_.peakBytes)
        stats_.peakBytes = inUse_;
    return reinterpret_cast<void *>(ptr);
}

void
Arena::reset()
{
    for (auto &block : blocks_)
        block.used = 0;
    active_ = 0;
    inUse_ = 0;
    stats_.resets += 1;
}

std::size_t
Arena::capacityBytes() const
{
    std::size_t cap = 0;
    for (const auto &block : blocks_)
        cap += block.capacity;
    return cap;
}

ArenaScope::ArenaScope(Arena &arena) : prev_(tl_scope_arena)
{
    tl_scope_arena = &arena;
}

ArenaScope::~ArenaScope()
{
    tl_scope_arena = prev_;
}

Arena *
ArenaScope::current()
{
    return tl_scope_arena;
}

Arena &
inferenceArena()
{
    thread_local Arena arena;
    return arena;
}

MemoryStats
memoryStats()
{
    MemoryStats s;
    s.heapAllocations =
        g_heap_allocations.load(std::memory_order_relaxed);
    s.arenaAllocations =
        g_arena_allocations.load(std::memory_order_relaxed);
    return s;
}

namespace detail {

void
noteTensorHeapAllocation()
{
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
}

void
noteTensorArenaAllocation()
{
    g_arena_allocations.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

} // namespace toltiers::tensor
