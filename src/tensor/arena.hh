/**
 * @file
 * Bump (arena) allocator for the inference hot path.
 *
 * A forward pass allocates a chain of activation temporaries whose
 * total size is identical for every request of the same shape.
 * Paying a heap round trip per temporary is pure overhead, so the
 * serving path runs each request inside an ArenaScope: every tensor
 * storage allocation inside the scope is a pointer bump into a
 * thread-local arena, and the whole request's scratch is recycled
 * with one reset() — after a warmup request has sized the arena, the
 * steady-state per-request path performs zero heap allocations
 * (asserted by tests/kernels_test.cc via the counting hooks below).
 */

#ifndef TOLTIERS_TENSOR_ARENA_HH
#define TOLTIERS_TENSOR_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace toltiers::tensor {

/** Monotonic counters of one Arena's activity. */
struct ArenaStats
{
    std::uint64_t allocations = 0; //!< allocate() calls served.
    std::uint64_t heapBlocks = 0;  //!< Heap refills (new blocks).
    std::uint64_t heapBytes = 0;   //!< Bytes fetched from the heap.
    std::uint64_t resets = 0;      //!< reset() calls.
    std::size_t peakBytes = 0;     //!< High-water mark of one cycle.
};

/**
 * A growable bump allocator. Memory is carved from fixed-size heap
 * blocks (plus oversized one-off blocks for requests larger than the
 * block size); individual allocations are never freed — reset()
 * rewinds the whole arena and reuses every block already fetched.
 * Not thread-safe: use one Arena per thread (see inferenceArena()).
 */
class Arena
{
  public:
    /** Default alignment of every allocation (cache line). */
    static constexpr std::size_t kAlignment = 64;

    /** @param block_bytes capacity of each heap block. */
    explicit Arena(std::size_t block_bytes = 1u << 20);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * A kAlignment-aligned span of at least `bytes` bytes, valid
     * until the next reset(). Zero bytes yields a valid non-null
     * pointer.
     */
    void *allocate(std::size_t bytes);

    /** Rewind: recycle every block; previous pointers die. */
    void reset();

    /** Bytes handed out since the last reset(). */
    std::size_t bytesInUse() const { return inUse_; }

    /** Total heap capacity owned by the arena. */
    std::size_t capacityBytes() const;

    /** Activity counters (monotonic across resets). */
    const ArenaStats &stats() const { return stats_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t capacity = 0;
        std::size_t used = 0;
    };

    Block &grow(std::size_t min_bytes);

    std::size_t blockBytes_;
    std::vector<Block> blocks_;
    std::size_t active_ = 0; //!< First block with free space.
    std::size_t inUse_ = 0;
    ArenaStats stats_;
};

/**
 * RAII redirection of Tensor storage into an arena: while a scope is
 * alive on a thread, every Tensor constructed on that thread draws
 * its element storage from the arena instead of the heap (and its
 * destructor is a no-op for that storage). Scopes nest; the previous
 * target is restored on destruction.
 *
 * The caller owns the reset() cadence: a serving request typically
 * opens a scope, resets the arena, and runs the forward pass inside.
 * Tensors allocated inside a scope must not outlive the next
 * reset().
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena &arena);
    ~ArenaScope();

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

    /** The arena Tensor storage currently targets, or nullptr. */
    static Arena *current();

  private:
    Arena *prev_;
};

/**
 * The calling thread's inference arena (created on first use). The
 * serving adapters run each request's forward pass inside a scope
 * over this arena so concurrent requests never share scratch.
 */
Arena &inferenceArena();

/** Process-wide tensor heap-storage counters (all threads). */
struct MemoryStats
{
    std::uint64_t heapAllocations = 0; //!< Tensor storage from heap.
    std::uint64_t arenaAllocations = 0; //!< Tensor storage from arenas.
};

/** Snapshot of the tensor storage counters. */
MemoryStats memoryStats();

namespace detail {

/** Storage-accounting hooks used by Tensor's element storage. */
void noteTensorHeapAllocation();
void noteTensorArenaAllocation();

} // namespace detail

} // namespace toltiers::tensor

#endif // TOLTIERS_TENSOR_ARENA_HH
