#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "tensor/kernels/kernels.hh"

namespace toltiers::tensor {

using common::panic;

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    TT_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2");
    std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    TT_ASSERT(b.dim(0) == k, "matmul inner dim mismatch: ", k, " vs ",
              b.dim(0));
    Tensor c({m, n});
    kernels::gemmF32(a.data(), b.data(), c.data(), m, k, n);
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    TT_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2");
    std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
    TT_ASSERT(b.dim(0) == k, "matmulTransA inner dim mismatch");
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float *arow = pa + kk * m;
        const float *brow = pb + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    TT_ASSERT(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2");
    std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    TT_ASSERT(b.dim(1) == k, "matmulTransB inner dim mismatch");
    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = pa + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            pc[i * n + j] = acc;
        }
    }
    return c;
}

void
addBiasRows(Tensor &x, const Tensor &bias)
{
    TT_ASSERT(x.rank() == 2 && bias.rank() == 1, "addBiasRows shapes");
    TT_ASSERT(x.dim(1) == bias.dim(0), "bias width mismatch");
    std::size_t m = x.dim(0), n = x.dim(1);
    for (std::size_t i = 0; i < m; ++i) {
        float *row = x.data() + i * n;
        for (std::size_t j = 0; j < n; ++j)
            row[j] += bias[j];
    }
}

Tensor
reluForward(const Tensor &x)
{
    Tensor out = x;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = std::max(0.0f, out[i]);
    return out;
}

Tensor
reluBackward(const Tensor &d_out, const Tensor &x)
{
    TT_ASSERT(d_out.sameShape(x), "reluBackward shape mismatch");
    Tensor d_in = d_out;
    for (std::size_t i = 0; i < d_in.size(); ++i) {
        if (x[i] <= 0.0f)
            d_in[i] = 0.0f;
    }
    return d_in;
}

Tensor
im2col(const Tensor &in, std::size_t sample, const ConvGeometry &g)
{
    TT_ASSERT(in.rank() == 4, "im2col expects NCHW input");
    std::size_t c = in.dim(1), h = in.dim(2), w = in.dim(3);
    std::size_t oh = g.outExtent(h), ow = g.outExtent(w);
    Tensor cols({c * g.kernel * g.kernel, oh * ow});
    float *pc = cols.data();

    std::size_t row = 0;
    for (std::size_t ch = 0; ch < c; ++ch) {
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
                float *dst = pc + row * (oh * ow);
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    long iy = static_cast<long>(oy * g.stride + ky) -
                              static_cast<long>(g.pad);
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        long ix =
                            static_cast<long>(ox * g.stride + kx) -
                            static_cast<long>(g.pad);
                        float v = 0.0f;
                        if (iy >= 0 && iy < static_cast<long>(h) &&
                            ix >= 0 && ix < static_cast<long>(w)) {
                            v = in.at4(sample, ch,
                                       static_cast<std::size_t>(iy),
                                       static_cast<std::size_t>(ix));
                        }
                        dst[oy * ow + ox] = v;
                    }
                }
            }
        }
    }
    return cols;
}

void
col2im(const Tensor &cols, Tensor &d_in, std::size_t sample,
       const ConvGeometry &g)
{
    TT_ASSERT(d_in.rank() == 4, "col2im expects NCHW gradient");
    std::size_t c = d_in.dim(1), h = d_in.dim(2), w = d_in.dim(3);
    std::size_t oh = g.outExtent(h), ow = g.outExtent(w);
    TT_ASSERT(cols.dim(0) == c * g.kernel * g.kernel &&
                  cols.dim(1) == oh * ow,
              "col2im column shape mismatch");
    const float *pc = cols.data();

    std::size_t row = 0;
    for (std::size_t ch = 0; ch < c; ++ch) {
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
                const float *src = pc + row * (oh * ow);
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    long iy = static_cast<long>(oy * g.stride + ky) -
                              static_cast<long>(g.pad);
                    if (iy < 0 || iy >= static_cast<long>(h))
                        continue;
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        long ix =
                            static_cast<long>(ox * g.stride + kx) -
                            static_cast<long>(g.pad);
                        if (ix < 0 || ix >= static_cast<long>(w))
                            continue;
                        d_in.at4(sample, ch,
                                 static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix)) +=
                            src[oy * ow + ox];
                    }
                }
            }
        }
    }
}

Tensor
conv2dForward(const Tensor &in, const Tensor &w, const Tensor &bias,
              const ConvGeometry &g)
{
    TT_ASSERT(in.rank() == 4 && w.rank() == 4, "conv2d shapes");
    std::size_t n = in.dim(0), c = in.dim(1);
    std::size_t h = in.dim(2), wd = in.dim(3);
    std::size_t f = w.dim(0);
    TT_ASSERT(w.dim(1) == c && w.dim(2) == g.kernel &&
                  w.dim(3) == g.kernel,
              "conv2d weight shape mismatch");
    TT_ASSERT(bias.rank() == 1 && bias.dim(0) == f,
              "conv2d bias shape mismatch");

    std::size_t oh = g.outExtent(h), ow = g.outExtent(wd);
    Tensor out({n, f, oh, ow});
    std::size_t ckk = c * g.kernel * g.kernel;

    for (std::size_t s = 0; s < n; ++s) {
        Tensor cols = im2col(in, s, g);
        // Weights viewed in place as [F, C*KH*KW]: res = W · cols.
        Tensor res({f, oh * ow});
        kernels::gemmF32(w.data(), cols.data(), res.data(), f, ckk,
                         oh * ow);
        for (std::size_t ff = 0; ff < f; ++ff) {
            const float *src = res.data() + ff * (oh * ow);
            float *dst =
                out.data() + ((s * f + ff) * oh) * ow;
            float b = bias[ff];
            for (std::size_t i = 0; i < oh * ow; ++i)
                dst[i] = src[i] + b;
        }
    }
    return out;
}

Conv2dGrads
conv2dBackward(const Tensor &in, const Tensor &w, const Tensor &d_out,
               const ConvGeometry &g)
{
    std::size_t n = in.dim(0), c = in.dim(1);
    std::size_t h = in.dim(2), wd = in.dim(3);
    std::size_t f = w.dim(0);
    std::size_t oh = g.outExtent(h), ow = g.outExtent(wd);
    TT_ASSERT(d_out.rank() == 4 && d_out.dim(0) == n &&
                  d_out.dim(1) == f && d_out.dim(2) == oh &&
                  d_out.dim(3) == ow,
              "conv2dBackward d_out shape mismatch");

    Conv2dGrads grads;
    grads.dIn = Tensor(in.shape());
    grads.dW = Tensor(w.shape());
    grads.dBias = Tensor({f});

    Tensor wmat = w;
    wmat.reshape({f, c * g.kernel * g.kernel});
    Tensor dwmat({f, c * g.kernel * g.kernel});

    for (std::size_t s = 0; s < n; ++s) {
        // View this sample's output gradient as [F, OH*OW].
        Tensor dmat({f, oh * ow});
        for (std::size_t ff = 0; ff < f; ++ff) {
            const float *src =
                d_out.data() + ((s * f + ff) * oh) * ow;
            float *dst = dmat.data() + ff * (oh * ow);
            double bsum = 0.0;
            for (std::size_t i = 0; i < oh * ow; ++i) {
                dst[i] = src[i];
                bsum += src[i];
            }
            grads.dBias[ff] += static_cast<float>(bsum);
        }

        Tensor cols = im2col(in, s, g);
        // dW += dmat * cols^T
        dwmat += matmulTransB(dmat, cols);
        // dCols = wmat^T * dmat
        Tensor dcols = matmulTransA(wmat, dmat);
        col2im(dcols, grads.dIn, s, g);
    }

    dwmat.reshape({f, c, g.kernel, g.kernel});
    grads.dW = std::move(dwmat);
    return grads;
}

PoolResult
maxPool2dForward(const Tensor &in, std::size_t kernel,
                 std::size_t stride)
{
    PoolResult res;
    res.out = maxPool2dForward(in, kernel, stride, res.argmax);
    return res;
}

Tensor
maxPool2dForward(const Tensor &in, std::size_t kernel,
                 std::size_t stride,
                 std::vector<std::uint32_t> &argmax)
{
    TT_ASSERT(in.rank() == 4, "maxPool2d expects NCHW");
    std::size_t n = in.dim(0), c = in.dim(1);
    std::size_t h = in.dim(2), w = in.dim(3);
    TT_ASSERT(h >= kernel && w >= kernel, "pool kernel too large");
    std::size_t oh = (h - kernel) / stride + 1;
    std::size_t ow = (w - kernel) / stride + 1;

    Tensor out({n, c, oh, ow});
    argmax.resize(out.size());

    std::size_t oidx = 0;
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
                    float best = -std::numeric_limits<float>::max();
                    std::size_t best_idx = 0;
                    for (std::size_t ky = 0; ky < kernel; ++ky) {
                        for (std::size_t kx = 0; kx < kernel; ++kx) {
                            std::size_t iy = oy * stride + ky;
                            std::size_t ix = ox * stride + kx;
                            std::size_t flat =
                                ((s * c + ch) * h + iy) * w + ix;
                            float v = in[flat];
                            if (v > best) {
                                best = v;
                                best_idx = flat;
                            }
                        }
                    }
                    out[oidx] = best;
                    argmax[oidx] =
                        static_cast<std::uint32_t>(best_idx);
                }
            }
        }
    }
    return out;
}

Tensor
maxPool2dBackward(const Tensor &d_out,
                  const std::vector<std::uint32_t> &argmax,
                  const Shape &in_shape)
{
    TT_ASSERT(d_out.size() == argmax.size(),
              "maxPool2dBackward argmax size mismatch");
    Tensor d_in(in_shape);
    for (std::size_t i = 0; i < d_out.size(); ++i)
        d_in[argmax[i]] += d_out[i];
    return d_in;
}

Tensor
globalAvgPoolForward(const Tensor &in)
{
    TT_ASSERT(in.rank() == 4, "globalAvgPool expects NCHW");
    std::size_t n = in.dim(0), c = in.dim(1);
    std::size_t hw = in.dim(2) * in.dim(3);
    Tensor out({n, c});
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const float *src = in.data() + (s * c + ch) * hw;
            double acc = 0.0;
            for (std::size_t i = 0; i < hw; ++i)
                acc += src[i];
            out.at2(s, ch) =
                static_cast<float>(acc / static_cast<double>(hw));
        }
    }
    return out;
}

Tensor
globalAvgPoolBackward(const Tensor &d_out, const Shape &in_shape)
{
    TT_ASSERT(in_shape.size() == 4, "globalAvgPool gradient shape");
    std::size_t n = in_shape[0], c = in_shape[1];
    std::size_t hw = in_shape[2] * in_shape[3];
    TT_ASSERT(d_out.rank() == 2 && d_out.dim(0) == n &&
                  d_out.dim(1) == c,
              "globalAvgPoolBackward d_out shape mismatch");
    Tensor d_in(in_shape);
    float inv = 1.0f / static_cast<float>(hw);
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            float g = d_out.at2(s, ch) * inv;
            float *dst = d_in.data() + (s * c + ch) * hw;
            for (std::size_t i = 0; i < hw; ++i)
                dst[i] = g;
        }
    }
    return d_in;
}

Tensor
softmaxRows(const Tensor &logits)
{
    TT_ASSERT(logits.rank() == 2, "softmaxRows expects rank-2");
    std::size_t m = logits.dim(0), n = logits.dim(1);
    Tensor probs({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        const float *row = logits.data() + i * n;
        float *out = probs.data() + i * n;
        float mx = row[0];
        for (std::size_t j = 1; j < n; ++j)
            mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            out[j] = std::exp(row[j] - mx);
            denom += out[j];
        }
        float inv = static_cast<float>(1.0 / denom);
        for (std::size_t j = 0; j < n; ++j)
            out[j] *= inv;
    }
    return probs;
}

double
crossEntropy(const Tensor &probs, const std::vector<std::size_t> &labels)
{
    TT_ASSERT(probs.rank() == 2 && probs.dim(0) == labels.size(),
              "crossEntropy label count mismatch");
    std::size_t m = probs.dim(0), n = probs.dim(1);
    double loss = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        TT_ASSERT(labels[i] < n, "label out of range");
        double p = probs.at2(i, labels[i]);
        loss -= std::log(std::max(p, 1e-12));
    }
    return loss / static_cast<double>(m);
}

Tensor
softmaxXentBackward(const Tensor &probs,
                    const std::vector<std::size_t> &labels)
{
    std::size_t m = probs.dim(0), n = probs.dim(1);
    TT_ASSERT(labels.size() == m, "label count mismatch");
    Tensor d = probs;
    float inv = 1.0f / static_cast<float>(m);
    for (std::size_t i = 0; i < m; ++i) {
        d.at2(i, labels[i]) -= 1.0f;
        float *row = d.data() + i * n;
        for (std::size_t j = 0; j < n; ++j)
            row[j] *= inv;
    }
    return d;
}

std::uint64_t
denseMacs(std::size_t m, std::size_t k, std::size_t n)
{
    return static_cast<std::uint64_t>(m) * k * n;
}

std::uint64_t
convMacs(std::size_t n, std::size_t c, std::size_t h, std::size_t w,
         std::size_t f, const ConvGeometry &g)
{
    std::size_t oh = g.outExtent(h), ow = g.outExtent(w);
    return static_cast<std::uint64_t>(n) * f * oh * ow * c * g.kernel *
           g.kernel;
}

} // namespace toltiers::tensor
