#include "nn/network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace toltiers::nn {

using tensor::Tensor;

Network::Network(std::string name) : name_(std::move(name)) {}

Network &
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
    return *this;
}

Tensor
Network::forward(const Tensor &in, bool train)
{
    TT_ASSERT(!layers_.empty(), "forward on an empty network");
    Tensor x = in;
    lastMacs_ = 0;
    for (auto &layer : layers_) {
        x = layer->forward(x, train);
        lastMacs_ += layer->lastMacs();
    }
    return x;
}

void
Network::backward(const Tensor &d_logits)
{
    Tensor d = d_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        d = (*it)->backward(d);
}

std::vector<Param *>
Network::params()
{
    std::vector<Param *> out;
    for (auto &layer : layers_) {
        for (Param *p : layer->params())
            out.push_back(p);
    }
    return out;
}

void
Network::zeroGrad()
{
    for (Param *p : params())
        p->grad.zero();
}

std::size_t
Network::parameterCount()
{
    std::size_t n = 0;
    for (Param *p : params())
        n += p->value.size();
    return n;
}

std::uint64_t
Network::macsPerSample(const tensor::Shape &shape)
{
    Tensor probe(shape.prepended(1));
    forward(probe, false);
    return lastMacs_;
}

std::vector<Prediction>
Network::predict(const Tensor &batch)
{
    Tensor logits = forward(batch, false);
    Tensor probs = tensor::softmaxRows(logits);
    std::size_t m = probs.dim(0), n = probs.dim(1);

    std::vector<Prediction> out(m);
    for (std::size_t i = 0; i < m; ++i) {
        const float *row = probs.data() + i * n;
        std::size_t best = 0, second = n > 1 ? 1 : 0;
        if (n > 1 && row[1] > row[0])
            std::swap(best, second);
        for (std::size_t j = 2; j < n; ++j) {
            if (row[j] > row[best]) {
                second = best;
                best = j;
            } else if (row[j] > row[second]) {
                second = j;
            }
        }
        out[i].label = best;
        out[i].confidence = row[best];
        out[i].margin =
            n > 1 ? row[best] - row[second]
                  : static_cast<double>(row[best]);
    }
    return out;
}

} // namespace toltiers::nn
