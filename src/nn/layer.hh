/**
 * @file
 * Layer abstraction for the from-scratch CNN substrate.
 *
 * Layers are stateful: forward() caches whatever backward() needs, so
 * a network instance must not interleave two half-finished batches.
 * Each trainable parameter is exposed through Param so the optimizer
 * can update all layers uniformly.
 */

#ifndef TOLTIERS_NN_LAYER_HH
#define TOLTIERS_NN_LAYER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace toltiers::nn {

/** One trainable tensor with its gradient and momentum buffer. */
struct Param
{
    tensor::Tensor value;
    tensor::Tensor grad;
    tensor::Tensor velocity;

    /** Allocate grad/velocity to match value's shape. */
    void
    init(tensor::Tensor v)
    {
        value = std::move(v);
        grad = tensor::Tensor(value.shape());
        velocity = tensor::Tensor(value.shape());
    }
};

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Layer type name for logging and serialization. */
    virtual std::string name() const = 0;

    /**
     * Forward pass. With train=true, implementations cache the
     * activations backward() needs; with train=false the layers that
     * would have to copy their input (Conv2d, Dense, Relu) skip the
     * cache so the inference path stays allocation free — backward()
     * after an inference-mode forward is valid only for the cheap
     * shape-caching layers (MaxPool2d, GlobalAvgPool, Flatten).
     */
    virtual tensor::Tensor forward(const tensor::Tensor &in,
                                   bool train) = 0;

    /** Backward pass; returns the gradient w.r.t. the input. */
    virtual tensor::Tensor backward(const tensor::Tensor &d_out) = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param *> params() { return {}; }

    /** MACs performed by the most recent forward() call. */
    std::uint64_t lastMacs() const { return lastMacs_; }

  protected:
    std::uint64_t lastMacs_ = 0;
};

/** 2-D convolution with bias. */
class Conv2d : public Layer
{
  public:
    /**
     * @param c_in input channels, @param f output filters,
     * @param g window geometry, @param rng weight initializer source.
     */
    Conv2d(std::size_t c_in, std::size_t f,
           const tensor::ConvGeometry &g, common::Pcg32 &rng);

    std::string name() const override { return "conv2d"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;
    std::vector<Param *> params() override { return {&w_, &b_}; }

    const tensor::ConvGeometry &geometry() const { return g_; }

    /** Trained weights [F, C, KH, KW] (read-only, for quantization). */
    const tensor::Tensor &weight() const { return w_.value; }

    /** Trained bias [F] (read-only, for quantization). */
    const tensor::Tensor &bias() const { return b_.value; }

  private:
    tensor::ConvGeometry g_;
    Param w_;
    Param b_;
    tensor::Tensor input_;
};

/** Fully connected layer with bias; input [N, in], output [N, out]. */
class Dense : public Layer
{
  public:
    Dense(std::size_t in, std::size_t out, common::Pcg32 &rng);

    std::string name() const override { return "dense"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;
    std::vector<Param *> params() override { return {&w_, &b_}; }

    /** Trained weights [in, out] (read-only, for quantization). */
    const tensor::Tensor &weight() const { return w_.value; }

    /** Trained bias [out] (read-only, for quantization). */
    const tensor::Tensor &bias() const { return b_.value; }

  private:
    Param w_; //!< [in, out]
    Param b_; //!< [out]
    tensor::Tensor input_;
};

/** Elementwise rectified linear unit. */
class Relu : public Layer
{
  public:
    std::string name() const override { return "relu"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;

  private:
    tensor::Tensor input_;
};

/** 2-D max pooling (no padding). */
class MaxPool2d : public Layer
{
  public:
    MaxPool2d(std::size_t kernel, std::size_t stride);

    std::string name() const override { return "maxpool2d"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;

    std::size_t kernel() const { return kernel_; }
    std::size_t stride() const { return stride_; }

  private:
    std::size_t kernel_;
    std::size_t stride_;
    std::vector<std::uint32_t> argmax_;
    tensor::Shape inShape_;
};

/** Global average pooling: [N,C,H,W] -> [N,C]. */
class GlobalAvgPool : public Layer
{
  public:
    std::string name() const override { return "gap"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;

  private:
    tensor::Shape inShape_;
};

/** Collapse [N,C,H,W] into [N, C*H*W]. */
class Flatten : public Layer
{
  public:
    std::string name() const override { return "flatten"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;

  private:
    tensor::Shape inShape_;
};

} // namespace toltiers::nn

#endif // TOLTIERS_NN_LAYER_HH
