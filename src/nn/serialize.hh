/**
 * @file
 * Binary weight serialization so the trained model zoo can be cached
 * on disk instead of retrained by every benchmark binary.
 */

#ifndef TOLTIERS_NN_SERIALIZE_HH
#define TOLTIERS_NN_SERIALIZE_HH

#include <string>

#include "nn/network.hh"

namespace toltiers::nn {

/**
 * Write all parameter tensors of the network to the given file.
 * Format: magic, version, param count, then per-param rank, shape,
 * and raw float data. fatal() on I/O failure.
 */
void saveWeights(Network &net, const std::string &path);

/**
 * Load parameter tensors saved by saveWeights() into a structurally
 * identical network. Returns false (leaving the network untouched or
 * partially loaded only on panic) if the file is absent; fatal() if
 * present but structurally incompatible.
 */
bool loadWeights(Network &net, const std::string &path);

} // namespace toltiers::nn

#endif // TOLTIERS_NN_SERIALIZE_HH
