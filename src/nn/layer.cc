#include "nn/layer.hh"

#include "common/logging.hh"

namespace toltiers::nn {

using tensor::Tensor;

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t c_in, std::size_t f,
               const tensor::ConvGeometry &g, common::Pcg32 &rng)
    : g_(g)
{
    Tensor w({f, c_in, g.kernel, g.kernel});
    w.randomKaiming(rng, c_in * g.kernel * g.kernel);
    w_.init(std::move(w));
    b_.init(Tensor({f}));
}

Tensor
Conv2d::forward(const Tensor &in, bool train)
{
    if (train)
        input_ = in;
    lastMacs_ = tensor::convMacs(in.dim(0), in.dim(1), in.dim(2),
                                 in.dim(3), w_.value.dim(0), g_);
    return tensor::conv2dForward(in, w_.value, b_.value, g_);
}

Tensor
Conv2d::backward(const Tensor &d_out)
{
    auto grads = tensor::conv2dBackward(input_, w_.value, d_out, g_);
    w_.grad += grads.dW;
    b_.grad += grads.dBias;
    return std::move(grads.dIn);
}

// ----------------------------------------------------------------- Dense

Dense::Dense(std::size_t in, std::size_t out, common::Pcg32 &rng)
{
    Tensor w({in, out});
    w.randomKaiming(rng, in);
    w_.init(std::move(w));
    b_.init(Tensor({out}));
}

Tensor
Dense::forward(const Tensor &in, bool train)
{
    TT_ASSERT(in.rank() == 2, "dense expects [N, features]");
    if (train)
        input_ = in;
    lastMacs_ =
        tensor::denseMacs(in.dim(0), in.dim(1), w_.value.dim(1));
    Tensor out = tensor::matmul(in, w_.value);
    tensor::addBiasRows(out, b_.value);
    return out;
}

Tensor
Dense::backward(const Tensor &d_out)
{
    // dW = in^T * dOut ; dIn = dOut * W^T ; db = column sums of dOut.
    w_.grad += tensor::matmulTransA(input_, d_out);
    std::size_t m = d_out.dim(0), n = d_out.dim(1);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            b_.grad[j] += d_out.at2(i, j);
    }
    return tensor::matmulTransB(d_out, w_.value);
}

// ------------------------------------------------------------------ Relu

Tensor
Relu::forward(const Tensor &in, bool train)
{
    if (train)
        input_ = in;
    lastMacs_ = 0;
    return tensor::reluForward(in);
}

Tensor
Relu::backward(const Tensor &d_out)
{
    return tensor::reluBackward(d_out, input_);
}

// ------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride)
{
    TT_ASSERT(kernel > 0 && stride > 0, "pool kernel/stride positive");
}

Tensor
MaxPool2d::forward(const Tensor &in, bool)
{
    inShape_ = in.shape();
    lastMacs_ = 0;
    // The member argmax buffer is reused across calls, so a warm
    // forward pass performs no heap allocation here.
    return tensor::maxPool2dForward(in, kernel_, stride_, argmax_);
}

Tensor
MaxPool2d::backward(const Tensor &d_out)
{
    return tensor::maxPool2dBackward(d_out, argmax_, inShape_);
}

// --------------------------------------------------------- GlobalAvgPool

Tensor
GlobalAvgPool::forward(const Tensor &in, bool)
{
    inShape_ = in.shape();
    lastMacs_ = 0;
    return tensor::globalAvgPoolForward(in);
}

Tensor
GlobalAvgPool::backward(const Tensor &d_out)
{
    return tensor::globalAvgPoolBackward(d_out, inShape_);
}

// --------------------------------------------------------------- Flatten

Tensor
Flatten::forward(const Tensor &in, bool)
{
    inShape_ = in.shape();
    TT_ASSERT(in.rank() >= 2, "flatten expects a batch dimension");
    Tensor out = in;
    std::size_t n = in.dim(0);
    out.reshape({n, in.size() / n});
    lastMacs_ = 0;
    return out;
}

Tensor
Flatten::backward(const Tensor &d_out)
{
    Tensor d_in = d_out;
    d_in.reshape(inShape_);
    return d_in;
}

} // namespace toltiers::nn
