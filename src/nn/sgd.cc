#include "nn/sgd.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "tensor/ops.hh"

namespace toltiers::nn {

using tensor::Tensor;

SgdTrainer::SgdTrainer(SgdConfig cfg) : cfg_(cfg)
{
    TT_ASSERT(cfg_.batchSize > 0, "batch size must be positive");
    TT_ASSERT(cfg_.learningRate > 0.0, "learning rate must be positive");
}

tensor::Tensor
gatherBatch(const Tensor &images, const std::vector<std::size_t> &rows)
{
    TT_ASSERT(images.rank() >= 2, "gatherBatch needs a batch dim");
    std::size_t stride = images.size() / images.dim(0);
    tensor::Shape shape = images.shape();
    shape[0] = rows.size();
    Tensor out(shape);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        TT_ASSERT(rows[i] < images.dim(0), "batch row out of range");
        std::memcpy(out.data() + i * stride,
                    images.data() + rows[i] * stride,
                    stride * sizeof(float));
    }
    return out;
}

void
SgdTrainer::step(Network &net, double lr)
{
    for (Param *p : net.params()) {
        auto n = p->value.size();
        float flr = static_cast<float>(lr);
        float mom = static_cast<float>(cfg_.momentum);
        float wd = static_cast<float>(cfg_.weightDecay);
        for (std::size_t i = 0; i < n; ++i) {
            float g = p->grad[i] + wd * p->value[i];
            p->velocity[i] = mom * p->velocity[i] - flr * g;
            p->value[i] += p->velocity[i];
        }
    }
}

void
SgdTrainer::train(Network &net, const Tensor &images,
                  const std::vector<std::size_t> &labels,
                  common::Pcg32 &rng,
                  const std::function<void(const EpochStats &)>
                      &callback)
{
    std::size_t n = images.dim(0);
    TT_ASSERT(labels.size() == n, "label count mismatch");

    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;

    double lr = cfg_.learningRate;
    for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_sum = 0.0;
        std::size_t correct = 0;
        std::size_t batches = 0;

        for (std::size_t start = 0; start < n;
             start += cfg_.batchSize) {
            std::size_t end = std::min(n, start + cfg_.batchSize);
            std::vector<std::size_t> rows(order.begin() + start,
                                          order.begin() + end);
            Tensor batch = gatherBatch(images, rows);
            std::vector<std::size_t> batch_labels(rows.size());
            for (std::size_t i = 0; i < rows.size(); ++i)
                batch_labels[i] = labels[rows[i]];

            net.zeroGrad();
            Tensor logits = net.forward(batch, true);
            Tensor probs = tensor::softmaxRows(logits);
            loss_sum += tensor::crossEntropy(probs, batch_labels);
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const float *row =
                    probs.data() + i * probs.dim(1);
                std::size_t best = 0;
                for (std::size_t j = 1; j < probs.dim(1); ++j) {
                    if (row[j] > row[best])
                        best = j;
                }
                if (best == batch_labels[i])
                    ++correct;
            }
            Tensor d =
                tensor::softmaxXentBackward(probs, batch_labels);
            net.backward(d);
            step(net, lr);
            ++batches;
        }

        if (callback) {
            EpochStats stats;
            stats.epoch = epoch;
            stats.loss = loss_sum / static_cast<double>(batches);
            stats.accuracy =
                static_cast<double>(correct) / static_cast<double>(n);
            callback(stats);
        }
        lr *= cfg_.lrDecay;
    }
}

EvalResult
evaluate(Network &net, const Tensor &images,
         const std::vector<std::size_t> &labels, std::size_t batch_size)
{
    std::size_t n = images.dim(0);
    TT_ASSERT(labels.size() == n, "label count mismatch");
    TT_ASSERT(batch_size > 0, "batch size must be positive");

    EvalResult res;
    res.predictions.reserve(n);
    std::size_t wrong = 0;
    double conf_sum = 0.0;

    for (std::size_t start = 0; start < n; start += batch_size) {
        std::size_t end = std::min(n, start + batch_size);
        std::vector<std::size_t> rows;
        rows.reserve(end - start);
        for (std::size_t i = start; i < end; ++i)
            rows.push_back(i);
        Tensor batch = gatherBatch(images, rows);
        auto preds = net.predict(batch);
        for (std::size_t i = 0; i < preds.size(); ++i) {
            if (preds[i].label != labels[start + i])
                ++wrong;
            conf_sum += preds[i].confidence;
            res.predictions.push_back(preds[i]);
        }
    }
    res.top1Error = static_cast<double>(wrong) / static_cast<double>(n);
    res.meanConfidence = conf_sum / static_cast<double>(n);
    return res;
}

} // namespace toltiers::nn
