/**
 * @file
 * Mini-batch SGD with momentum and weight decay, plus train/eval
 * loops over a labelled image set.
 */

#ifndef TOLTIERS_NN_SGD_HH
#define TOLTIERS_NN_SGD_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "common/random.hh"
#include "nn/network.hh"

namespace toltiers::nn {

/** Hyper-parameters for one training run. */
struct SgdConfig
{
    double learningRate = 0.05;
    double momentum = 0.9;
    double weightDecay = 1e-4;
    double lrDecay = 0.85;       //!< Multiplicative decay per epoch.
    std::size_t batchSize = 32;
    std::size_t epochs = 10;
};

/** Per-epoch training telemetry. */
struct EpochStats
{
    std::size_t epoch = 0;
    double loss = 0.0;     //!< Mean training loss.
    double accuracy = 0.0; //!< Training accuracy.
};

/** Result of evaluating a network on a labelled set. */
struct EvalResult
{
    double top1Error = 0.0;       //!< Fraction misclassified.
    double meanConfidence = 0.0;  //!< Mean softmax top-1 probability.
    std::vector<Prediction> predictions;
};

/** Mini-batch SGD trainer. */
class SgdTrainer
{
  public:
    explicit SgdTrainer(SgdConfig cfg);

    /**
     * Train in place. @param images NCHW batch of the whole training
     * set, @param labels one class index per sample, @param rng drives
     * shuffling. The callback, if set, observes per-epoch stats.
     */
    void train(Network &net, const tensor::Tensor &images,
               const std::vector<std::size_t> &labels,
               common::Pcg32 &rng,
               const std::function<void(const EpochStats &)>
                   &callback = nullptr);

    /** One SGD step over the accumulated gradients. */
    void step(Network &net, double lr);

    const SgdConfig &config() const { return cfg_; }

  private:
    SgdConfig cfg_;
};

/** Evaluate top-1 error and confidence over a labelled set. */
EvalResult evaluate(Network &net, const tensor::Tensor &images,
                    const std::vector<std::size_t> &labels,
                    std::size_t batch_size = 64);

/** Copy the given sample rows of an NCHW set into a new batch. */
tensor::Tensor gatherBatch(const tensor::Tensor &images,
                           const std::vector<std::size_t> &rows);

} // namespace toltiers::nn

#endif // TOLTIERS_NN_SGD_HH
