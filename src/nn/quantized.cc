#include "nn/quantized.hh"

#include <memory>
#include <utility>

#include "common/logging.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/ops.hh"

namespace toltiers::nn {

using common::panic;
using tensor::Tensor;

// ---------------------------------------------------------------- QDense

QDense::QDense(const Tensor &w, const Tensor &b,
               const tensor::QuantParams &in_quant)
    : in_(w.dim(0)), out_(w.dim(1)), inQuant_(in_quant)
{
    TT_ASSERT(w.rank() == 2, "QDense expects [in, out] weights");
    TT_ASSERT(b.rank() == 1 && b.dim(0) == out_,
              "QDense bias shape mismatch");

    // Per-output-channel quantization: channels are the columns of
    // the [in, out] weight matrix, so quantize a transposed copy and
    // transpose back into GEMM layout.
    std::vector<float> wt(in_ * out_);
    for (std::size_t k = 0; k < in_; ++k) {
        for (std::size_t j = 0; j < out_; ++j)
            wt[j * in_ + k] = w.data()[k * out_ + j];
    }
    std::vector<std::int8_t> qwt(in_ * out_);
    wScale_ =
        tensor::quantizeWeightsPerChannel(wt.data(), out_, in_,
                                          qwt.data());
    qw_.resize(in_ * out_);
    colSum_.assign(out_, 0);
    for (std::size_t j = 0; j < out_; ++j) {
        for (std::size_t k = 0; k < in_; ++k) {
            std::int8_t q = qwt[j * in_ + k];
            qw_[k * out_ + j] = q;
            colSum_[j] += q;
        }
    }
    bias_.assign(b.data(), b.data() + out_);
}

Tensor
QDense::forward(const Tensor &in, bool)
{
    TT_ASSERT(in.rank() == 2 && in.dim(1) == in_,
              "QDense input shape mismatch");
    std::size_t m = in.dim(0);
    qin_.resize(m * in_);
    tensor::quantizeBuffer(in.data(), m * in_, inQuant_, qin_.data());
    acc_.assign(m * out_, 0);
    tensor::kernels::gemmS8(qin_.data(), qw_.data(), acc_.data(), m,
                            in_, out_);

    Tensor out({m, out_});
    float sa = inQuant_.scale;
    std::int32_t za = inQuant_.zeroPoint;
    for (std::size_t i = 0; i < m; ++i) {
        const std::int32_t *arow = acc_.data() + i * out_;
        float *orow = out.data() + i * out_;
        for (std::size_t j = 0; j < out_; ++j) {
            orow[j] = static_cast<float>(arow[j] - za * colSum_[j]) *
                          (sa * wScale_[j]) +
                      bias_[j];
        }
    }
    lastMacs_ = tensor::denseMacs(m, in_, out_);
    return out;
}

Tensor
QDense::backward(const Tensor &)
{
    panic("QDense is inference-only: no backward pass");
}

// --------------------------------------------------------------- QConv2d

QConv2d::QConv2d(const Tensor &w, const Tensor &b,
                 const tensor::ConvGeometry &g,
                 const tensor::QuantParams &in_quant)
    : g_(g), filters_(w.dim(0)), cIn_(w.dim(1)), inQuant_(in_quant)
{
    TT_ASSERT(w.rank() == 4 && w.dim(2) == g.kernel &&
                  w.dim(3) == g.kernel,
              "QConv2d weight shape mismatch");
    TT_ASSERT(b.rank() == 1 && b.dim(0) == filters_,
              "QConv2d bias shape mismatch");

    std::size_t ckk = cIn_ * g_.kernel * g_.kernel;
    qw_.resize(filters_ * ckk);
    wScale_ = tensor::quantizeWeightsPerChannel(w.data(), filters_,
                                                ckk, qw_.data());
    rowSum_.assign(filters_, 0);
    for (std::size_t f = 0; f < filters_; ++f) {
        for (std::size_t k = 0; k < ckk; ++k)
            rowSum_[f] += qw_[f * ckk + k];
    }
    bias_.assign(b.data(), b.data() + filters_);
}

Tensor
QConv2d::forward(const Tensor &in, bool)
{
    TT_ASSERT(in.rank() == 4 && in.dim(1) == cIn_,
              "QConv2d input shape mismatch");
    std::size_t n = in.dim(0);
    std::size_t oh = g_.outExtent(in.dim(2));
    std::size_t ow = g_.outExtent(in.dim(3));
    std::size_t ckk = cIn_ * g_.kernel * g_.kernel;
    std::size_t ohow = oh * ow;

    Tensor out({n, filters_, oh, ow});
    float sa = inQuant_.scale;
    std::int32_t za = inQuant_.zeroPoint;
    for (std::size_t s = 0; s < n; ++s) {
        Tensor cols = tensor::im2col(in, s, g_);
        qcols_.resize(ckk * ohow);
        tensor::quantizeBuffer(cols.data(), ckk * ohow, inQuant_,
                               qcols_.data());
        acc_.assign(filters_ * ohow, 0);
        tensor::kernels::gemmS8(qw_.data(), qcols_.data(),
                                acc_.data(), filters_, ckk, ohow);
        for (std::size_t f = 0; f < filters_; ++f) {
            const std::int32_t *arow = acc_.data() + f * ohow;
            float *orow = out.data() + ((s * filters_ + f) * ohow);
            float scale = sa * wScale_[f];
            std::int32_t corr = za * rowSum_[f];
            for (std::size_t i = 0; i < ohow; ++i) {
                orow[i] = static_cast<float>(arow[i] - corr) * scale +
                          bias_[f];
            }
        }
    }
    lastMacs_ = tensor::convMacs(n, cIn_, in.dim(2), in.dim(3),
                                 filters_, g_);
    return out;
}

Tensor
QConv2d::backward(const Tensor &)
{
    panic("QConv2d is inference-only: no backward pass");
}

// ------------------------------------------------------- quantizeNetwork

Network
quantizeNetwork(Network &net, const Tensor &calibration,
                std::string name)
{
    Network out(std::move(name));
    Tensor x = calibration;
    for (const auto &layer : net.layers()) {
        Layer *l = layer.get();
        float lo = 0.0f, hi = 0.0f;
        tensor::bufferRange(x.data(), x.size(), lo, hi);
        if (auto *d = dynamic_cast<Dense *>(l)) {
            out.add(std::make_unique<QDense>(
                d->weight(), d->bias(),
                tensor::chooseQuantParams(lo, hi)));
        } else if (auto *c = dynamic_cast<Conv2d *>(l)) {
            out.add(std::make_unique<QConv2d>(
                c->weight(), c->bias(), c->geometry(),
                tensor::chooseQuantParams(lo, hi)));
        } else if (dynamic_cast<Relu *>(l) != nullptr) {
            out.add(std::make_unique<Relu>());
        } else if (auto *p = dynamic_cast<MaxPool2d *>(l)) {
            out.add(std::make_unique<MaxPool2d>(p->kernel(),
                                                p->stride()));
        } else if (dynamic_cast<GlobalAvgPool *>(l) != nullptr) {
            out.add(std::make_unique<GlobalAvgPool>());
        } else if (dynamic_cast<Flatten *>(l) != nullptr) {
            out.add(std::make_unique<Flatten>());
        } else {
            panic("quantizeNetwork: unsupported layer ", l->name());
        }
        x = l->forward(x, false);
    }
    return out;
}

} // namespace toltiers::nn
