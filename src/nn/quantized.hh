/**
 * @file
 * int8 inference-only layers and whole-network post-training
 * quantization.
 *
 * quantizeNetwork() walks a trained float network with a calibration
 * batch: each Conv2d/Dense layer is replaced by a QConv2d/QDense
 * whose weights are per-channel symmetric int8 and whose input
 * activation range was observed on the calibration data (static PTQ
 * — see tensor/kernels/quantize.hh for why static). Stateless layers
 * are cloned. The result serves as an ordinary nn::Network: same
 * MAC accounting (MACs describe the architecture, not the datatype),
 * ~4× smaller weights, and an integer hot loop.
 *
 * Quantized layers are inference-only: backward() panics and
 * params() is empty, so they are invisible to the optimizer and the
 * weight serializer.
 */

#ifndef TOLTIERS_NN_QUANTIZED_HH
#define TOLTIERS_NN_QUANTIZED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hh"
#include "tensor/kernels/quantize.hh"

namespace toltiers::nn {

/** int8 fully connected layer (inference only). */
class QDense : public Layer
{
  public:
    /**
     * Quantize a trained float layer.
     * @param w float weights [in, out], @param b float bias [out],
     * @param in_quant calibrated input activation parameters.
     */
    QDense(const tensor::Tensor &w, const tensor::Tensor &b,
           const tensor::QuantParams &in_quant);

    std::string name() const override { return "qdense"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;

  private:
    std::size_t in_;
    std::size_t out_;
    tensor::QuantParams inQuant_;
    std::vector<std::int8_t> qw_;     //!< [in, out] int8 weights.
    std::vector<float> wScale_;       //!< Per-output-channel scale.
    std::vector<std::int32_t> colSum_; //!< Per-column weight sums.
    std::vector<float> bias_;
    std::vector<std::int8_t> qin_;    //!< Reused input scratch.
    std::vector<std::int32_t> acc_;   //!< Reused accumulator scratch.
};

/** int8 convolution via im2col + int8 GEMM (inference only). */
class QConv2d : public Layer
{
  public:
    /**
     * Quantize a trained float layer.
     * @param w float weights [F, C, KH, KW], @param b float bias [F],
     * @param g window geometry,
     * @param in_quant calibrated input activation parameters.
     */
    QConv2d(const tensor::Tensor &w, const tensor::Tensor &b,
            const tensor::ConvGeometry &g,
            const tensor::QuantParams &in_quant);

    std::string name() const override { return "qconv2d"; }
    tensor::Tensor forward(const tensor::Tensor &in,
                           bool train) override;
    tensor::Tensor backward(const tensor::Tensor &d_out) override;

  private:
    tensor::ConvGeometry g_;
    std::size_t filters_;
    std::size_t cIn_;
    tensor::QuantParams inQuant_;
    std::vector<std::int8_t> qw_;      //!< [F, C*KH*KW] int8 weights.
    std::vector<float> wScale_;        //!< Per-filter scale.
    std::vector<std::int32_t> rowSum_; //!< Per-filter weight sums.
    std::vector<float> bias_;
    std::vector<std::int8_t> qcols_;   //!< Reused column scratch.
    std::vector<std::int32_t> acc_;    //!< Reused accumulator scratch.
};

/**
 * Post-training-quantize a trained float network. The calibration
 * batch (a representative sample of inputs, NCHW or [N, features])
 * is pushed through the float layers to record each Conv2d/Dense
 * input range. Throws via panic on layer types it cannot map.
 *
 * @param net trained float network (forward passes are run on it).
 * @param calibration representative input batch.
 * @param name name of the quantized network.
 */
Network quantizeNetwork(Network &net,
                        const tensor::Tensor &calibration,
                        std::string name);

} // namespace toltiers::nn

#endif // TOLTIERS_NN_QUANTIZED_HH
