#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>

#include "common/logging.hh"

namespace toltiers::nn {

using common::fatal;

namespace {

const std::uint32_t kMagic = 0x54544e4e; // "TTNN"
const std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ofstream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::ifstream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    return static_cast<bool>(in);
}

} // namespace

void
saveWeights(Network &net, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open weight file for writing: ", path);

    auto params = net.params();
    writePod(out, kMagic);
    writePod(out, kVersion);
    writePod(out, static_cast<std::uint32_t>(params.size()));
    for (Param *p : params) {
        writePod(out, static_cast<std::uint32_t>(p->value.rank()));
        for (std::size_t d : p->value.shape())
            writePod(out, static_cast<std::uint64_t>(d));
        out.write(reinterpret_cast<const char *>(p->value.data()),
                  static_cast<std::streamsize>(p->value.size() *
                                               sizeof(float)));
    }
    if (!out)
        fatal("error writing weight file: ", path);
}

bool
loadWeights(Network &net, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    std::uint32_t magic = 0, version = 0, count = 0;
    if (!readPod(in, magic) || magic != kMagic)
        fatal("not a toltiers weight file: ", path);
    if (!readPod(in, version) || version != kVersion)
        fatal("unsupported weight file version in ", path);
    if (!readPod(in, count))
        fatal("truncated weight file: ", path);

    auto params = net.params();
    if (count != params.size()) {
        fatal("weight file ", path, " has ", count,
              " params, network expects ", params.size());
    }
    for (Param *p : params) {
        std::uint32_t rank = 0;
        if (!readPod(in, rank) || rank != p->value.rank())
            fatal("weight file ", path, " rank mismatch");
        for (std::size_t d = 0; d < rank; ++d) {
            std::uint64_t dim = 0;
            if (!readPod(in, dim) || dim != p->value.dim(d))
                fatal("weight file ", path, " shape mismatch");
        }
        in.read(reinterpret_cast<char *>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() *
                                             sizeof(float)));
        if (!in)
            fatal("truncated weight data in ", path);
    }
    return true;
}

} // namespace toltiers::nn
