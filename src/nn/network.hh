/**
 * @file
 * Sequential network container: an ordered stack of layers ending in
 * logits, with helpers for prediction, MAC accounting, and parameter
 * enumeration.
 */

#ifndef TOLTIERS_NN_NETWORK_HH
#define TOLTIERS_NN_NETWORK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace toltiers::nn {

/** Per-sample prediction with its softmax confidence. */
struct Prediction
{
    std::size_t label = 0;    //!< argmax class.
    double confidence = 0.0;  //!< softmax probability of the argmax.
    double margin = 0.0;      //!< top-1 minus top-2 probability.
};

/** A feed-forward stack of layers producing classification logits. */
class Network
{
  public:
    /** @param name human-readable architecture name. */
    explicit Network(std::string name);

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /** Append a layer; returns *this for chaining. */
    Network &add(std::unique_ptr<Layer> layer);

    /** Architecture name. */
    const std::string &name() const { return name_; }

    /** Number of layers. */
    std::size_t depth() const { return layers_.size(); }

    /** Forward pass to logits. */
    tensor::Tensor forward(const tensor::Tensor &in, bool train);

    /** Backward pass from the loss gradient w.r.t. logits. */
    void backward(const tensor::Tensor &d_logits);

    /** All trainable parameters across layers. */
    std::vector<Param *> params();

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** Total trainable scalar count. */
    std::size_t parameterCount();

    /** MACs of the most recent forward() call. */
    std::uint64_t lastForwardMacs() const { return lastMacs_; }

    /**
     * MACs for a single sample of the given shape (runs one dry
     * forward pass on a zero batch of one).
     */
    std::uint64_t macsPerSample(const tensor::Shape &shape);

    /** Ordered layer stack (read-only, e.g. for quantization). */
    const std::vector<std::unique_ptr<Layer>> &layers() const
    {
        return layers_;
    }

    /**
     * Classify a batch: softmax over logits, argmax plus confidence
     * for each row.
     */
    std::vector<Prediction> predict(const tensor::Tensor &batch);

  private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> layers_;
    std::uint64_t lastMacs_ = 0;
};

} // namespace toltiers::nn

#endif // TOLTIERS_NN_NETWORK_HH
